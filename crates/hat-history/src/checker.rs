//! Isolation levels as sets of prohibited phenomena (Appendix A.3).

use crate::dsg::{Dsg, History};
use crate::phenomena::{self, Phenomenon, Violation};
use hat_core::TxnRecord;
use std::fmt;

/// Named isolation / consistency levels with formal phenomenon-based
/// definitions (Definitions 17, 21, 23, 25, 27, 29, 31, 33, 35, 36, 37,
/// 40, 41).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsolationLevel {
    /// PL-1: prohibits G0.
    ReadUncommitted,
    /// PL-2: prohibits G0, G1a, G1b, G1c.
    ReadCommitted,
    /// Prohibits IMP.
    ItemCutIsolation,
    /// Prohibits PMP (and IMP).
    PredicateCutIsolation,
    /// Read Committed + OTV prohibited.
    MonotonicAtomicView,
    /// Read Atomic (the RAMP paper's guarantee): Read Committed + no
    /// fractured reads (which subsumes OTV).
    ReadAtomic,
    /// Prohibits N-MR.
    MonotonicReads,
    /// Prohibits N-MW.
    MonotonicWrites,
    /// Prohibits MYR.
    ReadYourWrites,
    /// Prohibits MRWD.
    WritesFollowReads,
    /// N-MR + N-MW + MYR prohibited.
    Pram,
    /// PRAM + MRWD prohibited.
    Causal,
    /// G0, G1, PMP, OTV, Lost Update prohibited (Definition 40).
    SnapshotIsolation,
    /// G0, G1, Write Skew prohibited (Definition 41).
    RepeatableRead,
    /// Everything above.
    Serializable,
}

impl IsolationLevel {
    /// The phenomena this level prohibits.
    pub fn prohibited(self) -> Vec<Phenomenon> {
        use Phenomenon::*;
        match self {
            IsolationLevel::ReadUncommitted => vec![G0],
            IsolationLevel::ReadCommitted => vec![G0, G1a, G1b, G1c],
            IsolationLevel::ItemCutIsolation => vec![Imp],
            IsolationLevel::PredicateCutIsolation => vec![Imp, Pmp],
            IsolationLevel::MonotonicAtomicView => vec![G0, G1a, G1b, G1c, Otv],
            IsolationLevel::ReadAtomic => vec![G0, G1a, G1b, G1c, Otv, FracturedReads],
            IsolationLevel::MonotonicReads => vec![NonMonotonicReads],
            IsolationLevel::MonotonicWrites => vec![NonMonotonicWrites],
            IsolationLevel::ReadYourWrites => vec![MissingYourWrites],
            IsolationLevel::WritesFollowReads => vec![Mrwd],
            IsolationLevel::Pram => {
                vec![NonMonotonicReads, NonMonotonicWrites, MissingYourWrites]
            }
            IsolationLevel::Causal => vec![
                NonMonotonicReads,
                NonMonotonicWrites,
                MissingYourWrites,
                Mrwd,
            ],
            IsolationLevel::SnapshotIsolation => {
                vec![G0, G1a, G1b, G1c, Pmp, Otv, FracturedReads, LostUpdate]
            }
            // RR dominates MAV and RA in the Figure 2 lattice, so its
            // prohibited set includes their phenomena.
            IsolationLevel::RepeatableRead => {
                vec![G0, G1a, G1b, G1c, Otv, FracturedReads, WriteSkew]
            }
            IsolationLevel::Serializable => vec![
                G0,
                G1a,
                G1b,
                G1c,
                Imp,
                Pmp,
                Otv,
                FracturedReads,
                NonMonotonicReads,
                NonMonotonicWrites,
                MissingYourWrites,
                Mrwd,
                LostUpdate,
                WriteSkew,
            ],
        }
    }
}

/// Result of checking a history.
#[derive(Debug, Clone)]
pub struct Report {
    /// The level checked.
    pub level: IsolationLevel,
    /// Committed transactions examined.
    pub txns_checked: usize,
    /// Violations of the level's prohibited phenomena.
    pub violations: Vec<Violation>,
}

impl Report {
    /// True if the history satisfies the level.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:?}: {} txns, {} violations",
            self.level,
            self.txns_checked,
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Detects a single phenomenon over a prepared history.
pub fn detect(phenomenon: Phenomenon, history: &History, dsg: &Dsg) -> Vec<Violation> {
    match phenomenon {
        Phenomenon::G0 => phenomena::g0(history, dsg),
        Phenomenon::G1a => phenomena::g1a(history),
        Phenomenon::G1b => phenomena::g1b(history),
        Phenomenon::G1c => phenomena::g1c(history, dsg),
        Phenomenon::Imp => phenomena::imp(history),
        Phenomenon::Pmp => phenomena::pmp(history),
        Phenomenon::Otv => phenomena::otv(history),
        Phenomenon::FracturedReads => phenomena::fractured_reads(history),
        Phenomenon::NonMonotonicReads => phenomena::non_monotonic_reads(history),
        Phenomenon::NonMonotonicWrites => phenomena::non_monotonic_writes(history),
        Phenomenon::MissingYourWrites => phenomena::missing_your_writes(history),
        Phenomenon::Mrwd => phenomena::mrwd(history),
        Phenomenon::LostUpdate => phenomena::lost_update(history, dsg),
        Phenomenon::WriteSkew => phenomena::write_skew(history, dsg),
    }
}

/// Checks `records` against `level`.
pub fn check(records: Vec<TxnRecord>, level: IsolationLevel) -> Report {
    let history = History::new(records);
    let dsg = Dsg::build(&history);
    let mut violations = Vec::new();
    for p in level.prohibited() {
        violations.extend(detect(p, &history, &dsg));
    }
    Report {
        level,
        txns_checked: history.len(),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use hat_core::{OpRecord, Timestamp, TxnOutcome};
    use hat_storage::Key;

    fn lost_update_history() -> Vec<TxnRecord> {
        let read = |k: &str, o| OpRecord::Read {
            key: Key::from(k.to_owned()),
            observed: o,
            value: Bytes::new(),
        };
        let write = |k: &str, v: &str| OpRecord::Write {
            key: Key::from(k.to_owned()),
            value: Bytes::from(v.to_owned()),
        };
        vec![
            TxnRecord {
                id: Timestamp::new(1, 1),
                session: 1,
                session_seq: 0,
                ops: vec![read("x", Timestamp::INITIAL), write("x", "120")],
                outcome: TxnOutcome::Committed,
            },
            TxnRecord {
                id: Timestamp::new(1, 2),
                session: 2,
                session_seq: 0,
                ops: vec![read("x", Timestamp::INITIAL), write("x", "130")],
                outcome: TxnOutcome::Committed,
            },
        ]
    }

    #[test]
    fn si_catches_lost_update_but_rc_does_not() {
        let rc = check(lost_update_history(), IsolationLevel::ReadCommitted);
        assert!(rc.ok(), "RC permits lost update: {rc}");
        let si = check(lost_update_history(), IsolationLevel::SnapshotIsolation);
        assert!(!si.ok(), "SI prohibits lost update");
        assert!(si
            .violations
            .iter()
            .any(|v| v.phenomenon == Phenomenon::LostUpdate));
    }

    /// The stale sibling is read *before* the fractured transaction's
    /// write is observed: order-aware OTV (hence MAV) passes, but the
    /// read set still exposes a partial write-set — only Read Atomic
    /// catches it.
    fn backward_fracture_history() -> Vec<TxnRecord> {
        let read = |k: &str, o, v: &str| OpRecord::Read {
            key: Key::from(k.to_owned()),
            observed: o,
            value: Bytes::from(v.to_owned()),
        };
        let write = |k: &str, v: &str| OpRecord::Write {
            key: Key::from(k.to_owned()),
            value: Bytes::from(v.to_owned()),
        };
        let writer = Timestamp::new(5, 1);
        vec![
            TxnRecord {
                id: writer,
                session: 1,
                session_seq: 0,
                ops: vec![write("x", "new"), write("y", "new")],
                outcome: TxnOutcome::Committed,
            },
            TxnRecord {
                id: Timestamp::new(6, 2),
                session: 2,
                session_seq: 0,
                // y read old first, then x from the writer: fractured.
                ops: vec![read("y", Timestamp::INITIAL, ""), read("x", writer, "new")],
                outcome: TxnOutcome::Committed,
            },
        ]
    }

    #[test]
    fn read_atomic_catches_backward_fractures_mav_misses() {
        let mav = check(
            backward_fracture_history(),
            IsolationLevel::MonotonicAtomicView,
        );
        assert!(mav.ok(), "OTV is order-aware and misses this: {mav}");
        let ra = check(backward_fracture_history(), IsolationLevel::ReadAtomic);
        assert!(!ra.ok(), "Read Atomic prohibits any partial write-set");
        assert!(ra
            .violations
            .iter()
            .all(|v| v.phenomenon == Phenomenon::FracturedReads));
    }

    #[test]
    fn own_write_reads_are_not_fractures() {
        // A txn that wrote y itself, read it back, and read an older x
        // from a txn that also wrote y: read-your-writes wins, no flag.
        let own = Timestamp::new(11, 2);
        let writer = Timestamp::new(9, 1);
        let h = vec![
            TxnRecord {
                id: writer,
                session: 1,
                session_seq: 0,
                ops: vec![
                    OpRecord::Write {
                        key: Key::from("x"),
                        value: Bytes::from("w"),
                    },
                    OpRecord::Write {
                        key: Key::from("y"),
                        value: Bytes::from("w"),
                    },
                ],
                outcome: TxnOutcome::Committed,
            },
            TxnRecord {
                id: own,
                session: 2,
                session_seq: 0,
                ops: vec![
                    OpRecord::Write {
                        key: Key::from("y"),
                        value: Bytes::from("mine"),
                    },
                    OpRecord::Read {
                        key: Key::from("y"),
                        observed: own,
                        value: Bytes::from("mine"),
                    },
                    OpRecord::Read {
                        key: Key::from("x"),
                        observed: writer,
                        value: Bytes::from("w"),
                    },
                ],
                outcome: TxnOutcome::Committed,
            },
        ];
        let ra = check(h, IsolationLevel::ReadAtomic);
        assert!(ra.ok(), "{ra}");
    }

    #[test]
    fn serializable_prohibits_everything() {
        let p = IsolationLevel::Serializable.prohibited();
        assert_eq!(p.len(), 14);
    }

    #[test]
    fn report_display_is_readable() {
        let r = check(lost_update_history(), IsolationLevel::SnapshotIsolation);
        let s = r.to_string();
        assert!(s.contains("Lost Update"), "{s}");
    }

    #[test]
    fn empty_history_is_clean_everywhere() {
        for level in [
            IsolationLevel::ReadUncommitted,
            IsolationLevel::ReadCommitted,
            IsolationLevel::MonotonicAtomicView,
            IsolationLevel::Causal,
            IsolationLevel::Serializable,
        ] {
            assert!(check(Vec::new(), level).ok());
        }
    }
}
