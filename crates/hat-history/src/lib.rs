//! # hat-history — Adya-style anomaly detection
//!
//! The paper defines every isolation level and session guarantee in terms
//! of *phenomena* over histories (Appendix A, following Adya's
//! dissertation). This crate makes those definitions executable:
//!
//! * [`dsg`] — builds the Direct Serialization Graph of a history
//!   recorded by `hat-core` clients: write-dependencies, read-
//!   dependencies, (item-)anti-dependencies and session-dependencies,
//!   plus the per-item version order.
//! * [`phenomena`] — detectors for G0 (dirty writes), G1a (aborted
//!   reads), G1b (intermediate reads), G1c (circular information flow),
//!   IMP/PMP (cut-isolation violations), OTV (observed transaction
//!   vanishes — the MAV phenomenon), Fractured Reads (partial write-set
//!   observed — the Read Atomic phenomenon of the RAMP follow-up work),
//!   the session phenomena N-MR, N-MW, MYR and MRWD, plus Lost Update
//!   and Write Skew.
//! * [`checker`] — maps named isolation levels to their prohibited
//!   phenomena (Appendix A definitions 17–41) and checks a history
//!   against a level.
//!
//! The test suites of the workspace use this crate to *prove* that the
//! protocol implementations provide what Table 3 claims: e.g. MAV
//! histories never exhibit G0/G1/OTV, while eventual histories under
//! partition do exhibit Lost Update.

pub mod checker;
pub mod dsg;
pub mod phenomena;

pub use checker::{check, IsolationLevel, Report};
pub use dsg::{Dsg, EdgeKind, History};
pub use phenomena::{Phenomenon, Violation};
