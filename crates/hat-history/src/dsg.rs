//! History preparation and the Direct Serialization Graph (Appendix A.2).

use hat_core::{OpRecord, Timestamp, TxnOutcome, TxnRecord};
use hat_storage::Key;
use std::collections::{BTreeSet, HashMap};

/// Edge kinds of the DSG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Write-dependency: the target installs the item's next version
    /// after the source's version (Definition 13).
    Ww,
    /// Read-dependency: the target read a version the source installed
    /// (Definition 4).
    Wr,
    /// Item-anti-dependency: the source read a version and the target
    /// installed the item's next version (Definition 9).
    Rw,
    /// Session-dependency: same session, source precedes target
    /// (Definition 15).
    Session,
}

/// A directed labeled edge between committed transactions (by index into
/// [`History::committed`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Source transaction index.
    pub from: usize,
    /// Target transaction index.
    pub to: usize,
    /// Dependency kind.
    pub kind: EdgeKind,
    /// The item the dependency is *by* (None for session edges).
    pub item: Option<Key>,
}

/// A prepared history: committed transactions, per-item version orders,
/// and final writes.
#[derive(Debug, Clone)]
pub struct History {
    /// All records, committed and aborted, in input order.
    pub all: Vec<TxnRecord>,
    /// Indices (into `all`) of committed transactions.
    pub committed: Vec<usize>,
    /// Version order per item: the initial version then committed
    /// installed versions, ascending by stamp (the LWW order every
    /// replica applies).
    pub version_order: HashMap<Key, Vec<Timestamp>>,
    /// Committed transaction index by its write stamp.
    pub writer_of: HashMap<Timestamp, usize>,
    /// Final written value per (committed transaction, key).
    pub final_write: HashMap<(Timestamp, Key), bytes::Bytes>,
}

impl History {
    /// Prepares a history from client records.
    pub fn new(records: Vec<TxnRecord>) -> Self {
        let committed: Vec<usize> = records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.outcome == TxnOutcome::Committed)
            .map(|(i, _)| i)
            .collect();
        let mut version_sets: HashMap<Key, BTreeSet<Timestamp>> = HashMap::new();
        let mut writer_of = HashMap::new();
        let mut final_write = HashMap::new();
        for &i in &committed {
            let r = &records[i];
            writer_of.insert(r.id, i);
            for op in &r.ops {
                if let OpRecord::Write { key, value } = op {
                    version_sets.entry(key.clone()).or_default().insert(r.id);
                    final_write.insert((r.id, key.clone()), value.clone());
                }
            }
        }
        let version_order = version_sets
            .into_iter()
            .map(|(k, set)| {
                let mut v: Vec<Timestamp> = vec![Timestamp::INITIAL];
                v.extend(set);
                (k, v)
            })
            .collect();
        History {
            all: records,
            committed,
            version_order,
            writer_of,
            final_write,
        }
    }

    /// The committed transaction record at committed-index `ci`.
    pub fn txn(&self, ci: usize) -> &TxnRecord {
        &self.all[self.committed[ci]]
    }

    /// Number of committed transactions.
    pub fn len(&self) -> usize {
        self.committed.len()
    }

    /// True if the history has no committed transactions.
    pub fn is_empty(&self) -> bool {
        self.committed.is_empty()
    }

    /// The version following `v` in `key`'s version order, if any.
    pub fn next_version(&self, key: &Key, v: Timestamp) -> Option<Timestamp> {
        let order = self.version_order.get(key)?;
        let pos = order.iter().position(|&x| x == v)?;
        order.get(pos + 1).copied()
    }
}

/// The Direct Serialization Graph over committed transactions.
#[derive(Debug, Clone)]
pub struct Dsg {
    /// All labeled edges (self-edges excluded, as in Adya).
    pub edges: Vec<Edge>,
    /// Number of nodes (committed transactions).
    pub nodes: usize,
}

impl Dsg {
    /// Builds the DSG of `history`.
    pub fn build(history: &History) -> Self {
        let mut edges = Vec::new();
        let nodes = history.len();
        // index of committed txn by record index
        let ci_of: HashMap<usize, usize> = history
            .committed
            .iter()
            .enumerate()
            .map(|(ci, &ri)| (ri, ci))
            .collect();

        // ww edges: successive committed versions of each item.
        for (key, order) in &history.version_order {
            for w in order.windows(2) {
                let (a, b) = (w[0], w[1]);
                if a == Timestamp::INITIAL {
                    continue; // the init txn is virtual
                }
                let (fa, fb) = (history.writer_of[&a], history.writer_of[&b]);
                if fa != fb {
                    edges.push(Edge {
                        from: ci_of[&fa],
                        to: ci_of[&fb],
                        kind: EdgeKind::Ww,
                        item: Some(key.clone()),
                    });
                }
            }
        }

        // wr and rw edges from reads.
        for (ci, &ri) in history.committed.iter().enumerate() {
            let reader = &history.all[ri];
            for op in &reader.ops {
                let (key, observed) = match op {
                    OpRecord::Read { key, observed, .. } => (key, *observed),
                    _ => continue,
                };
                // wr: writer(observed) -> reader
                if !observed.is_initial() {
                    if let Some(&wri) = history.writer_of.get(&observed) {
                        if wri != ri {
                            edges.push(Edge {
                                from: ci_of[&wri],
                                to: ci,
                                kind: EdgeKind::Wr,
                                item: Some(key.clone()),
                            });
                        }
                    }
                }
                // rw: reader -> writer(next version after observed)
                if let Some(next) = history.next_version(key, observed) {
                    if let Some(&nwri) = history.writer_of.get(&next) {
                        if nwri != ri {
                            edges.push(Edge {
                                from: ci,
                                to: ci_of[&nwri],
                                kind: EdgeKind::Rw,
                                item: Some(key.clone()),
                            });
                        }
                    }
                }
            }
        }

        // session edges: successive committed txns of each session.
        let mut by_session: HashMap<u32, Vec<usize>> = HashMap::new();
        for (ci, &ri) in history.committed.iter().enumerate() {
            by_session
                .entry(history.all[ri].session)
                .or_default()
                .push(ci);
        }
        for seq in by_session.values_mut() {
            seq.sort_by_key(|&ci| history.txn(ci).session_seq);
            for w in seq.windows(2) {
                edges.push(Edge {
                    from: w[0],
                    to: w[1],
                    kind: EdgeKind::Session,
                    item: None,
                });
            }
        }

        edges.sort_by_key(|e| (e.from, e.to));
        edges.dedup();
        Dsg { edges, nodes }
    }

    /// Strongly connected components of the subgraph whose edges satisfy
    /// `keep`. Returns components with more than one node (cycles); each
    /// is a sorted list of node indices.
    pub fn cycles(&self, keep: impl Fn(&Edge) -> bool) -> Vec<Vec<usize>> {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.nodes];
        for e in &self.edges {
            if keep(e) {
                adj[e.from].push(e.to);
            }
        }
        let sccs = tarjan(&adj);
        sccs.into_iter()
            .filter(|c| c.len() > 1)
            .map(|mut c| {
                c.sort_unstable();
                c
            })
            .collect()
    }

    /// Edges inside a node set, filtered.
    pub fn edges_within<'a>(
        &'a self,
        nodes: &'a [usize],
        keep: impl Fn(&Edge) -> bool + 'a,
    ) -> impl Iterator<Item = &'a Edge> + 'a {
        self.edges
            .iter()
            .filter(move |e| keep(e) && nodes.contains(&e.from) && nodes.contains(&e.to))
    }
}

/// Iterative Tarjan SCC.
fn tarjan(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next_index = 0usize;
    let mut sccs = Vec::new();

    // explicit DFS stack: (node, child-iterator position)
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn write(key: &str, val: &str) -> OpRecord {
        OpRecord::Write {
            key: Key::from(key.to_owned()),
            value: Bytes::from(val.to_owned()),
        }
    }
    fn read(key: &str, observed: Timestamp) -> OpRecord {
        OpRecord::Read {
            key: Key::from(key.to_owned()),
            observed,
            value: Bytes::new(),
        }
    }
    fn txn(id: Timestamp, session: u32, seq: u64, ops: Vec<OpRecord>) -> TxnRecord {
        TxnRecord {
            id,
            session,
            session_seq: seq,
            ops,
            outcome: TxnOutcome::Committed,
        }
    }
    fn ts(s: u64, w: u32) -> Timestamp {
        Timestamp::new(s, w)
    }

    #[test]
    fn version_order_includes_initial() {
        let h = History::new(vec![
            txn(ts(2, 1), 1, 0, vec![write("x", "a")]),
            txn(ts(1, 2), 2, 0, vec![write("x", "b")]),
        ]);
        let order = &h.version_order[&Key::from("x")];
        assert_eq!(order, &vec![Timestamp::INITIAL, ts(1, 2), ts(2, 1)]);
        assert_eq!(h.next_version(&Key::from("x"), ts(1, 2)), Some(ts(2, 1)));
        assert_eq!(h.next_version(&Key::from("x"), ts(2, 1)), None);
    }

    #[test]
    fn aborted_txns_are_not_writers() {
        let mut aborted = txn(ts(1, 1), 1, 0, vec![write("x", "a")]);
        aborted.outcome = TxnOutcome::AbortedExternal;
        let h = History::new(vec![aborted, txn(ts(2, 2), 2, 0, vec![write("x", "b")])]);
        assert_eq!(h.len(), 1);
        assert_eq!(h.version_order[&Key::from("x")].len(), 2);
    }

    #[test]
    fn wr_and_rw_edges() {
        // T1 writes x; T2 reads T1's x (wr); T3 wrote x after T1 (ww),
        // so T2 also anti-depends on T3 (rw).
        let h = History::new(vec![
            txn(ts(1, 1), 1, 0, vec![write("x", "a")]),
            txn(ts(5, 2), 2, 0, vec![read("x", ts(1, 1))]),
            txn(ts(9, 3), 3, 0, vec![write("x", "c")]),
        ]);
        let g = Dsg::build(&h);
        let kinds: Vec<(usize, usize, EdgeKind)> =
            g.edges.iter().map(|e| (e.from, e.to, e.kind)).collect();
        assert!(kinds.contains(&(0, 1, EdgeKind::Wr)), "{kinds:?}");
        assert!(kinds.contains(&(1, 2, EdgeKind::Rw)), "{kinds:?}");
        assert!(kinds.contains(&(0, 2, EdgeKind::Ww)), "{kinds:?}");
    }

    #[test]
    fn read_of_initial_antidepends_on_first_writer() {
        let h = History::new(vec![
            txn(ts(1, 1), 1, 0, vec![read("x", Timestamp::INITIAL)]),
            txn(ts(2, 2), 2, 0, vec![write("x", "a")]),
        ]);
        let g = Dsg::build(&h);
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == 0 && e.to == 1 && e.kind == EdgeKind::Rw));
    }

    #[test]
    fn session_edges_follow_session_seq() {
        let h = History::new(vec![
            txn(ts(1, 7), 7, 0, vec![write("a", "1")]),
            txn(ts(2, 7), 7, 1, vec![write("b", "1")]),
            txn(ts(1, 8), 8, 0, vec![write("c", "1")]),
        ]);
        let g = Dsg::build(&h);
        let sess: Vec<(usize, usize)> = g
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::Session)
            .map(|e| (e.from, e.to))
            .collect();
        assert_eq!(sess, vec![(0, 1)]);
    }

    #[test]
    fn cycle_detection_finds_ww_cycle() {
        // classic G0: T1 and T2 interleave writes to x and y such that
        // version orders disagree.
        let h = History::new(vec![
            txn(ts(1, 1), 1, 0, vec![write("x", "1"), write("y", "1")]),
            txn(ts(2, 2), 2, 0, vec![write("x", "2"), write("y", "2")]),
        ]);
        // force disagreement: y's order says T2 before T1
        let mut h = h;
        h.version_order
            .insert(Key::from("y"), vec![Timestamp::INITIAL, ts(2, 2), ts(1, 1)]);
        let g = Dsg::build(&h);
        let cycles = g.cycles(|e| e.kind == EdgeKind::Ww);
        assert_eq!(cycles, vec![vec![0, 1]]);
    }

    #[test]
    fn no_false_cycles_on_clean_history() {
        let h = History::new(vec![
            txn(ts(1, 1), 1, 0, vec![write("x", "1")]),
            txn(ts(2, 2), 2, 0, vec![read("x", ts(1, 1)), write("y", "1")]),
            txn(ts(3, 3), 3, 0, vec![read("y", ts(2, 2))]),
        ]);
        let g = Dsg::build(&h);
        assert!(g.cycles(|_| true).is_empty());
    }

    #[test]
    fn tarjan_handles_diamonds_and_big_cycles() {
        // 0->1->2->0 cycle plus 3 hanging off
        let adj = vec![vec![1], vec![2], vec![0, 3], vec![]];
        let mut sccs = tarjan(&adj);
        sccs.iter_mut().for_each(|c| c.sort_unstable());
        sccs.sort();
        assert!(sccs.contains(&vec![0, 1, 2]));
        assert!(sccs.contains(&vec![3]));
    }
}
