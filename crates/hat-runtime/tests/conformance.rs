//! Cross-frontend conformance: the same fixed-seed scripted workload,
//! run through the simulator backend and the threaded backend, must
//! produce *bit-identical* transaction records for every engine. This
//! is the PR-6 regression net for the zero-copy record path and group
//! commit — both refactors touched every message the client exchanges
//! with servers, and "same records, byte for byte" is the strongest
//! cheap statement that observable behavior did not move.
//!
//! The script is sequential (one op stream, quiesce between txns), so
//! thread scheduling in the runtime backend cannot reorder anything:
//! any divergence is a real behavioral difference, not nondeterminism.

use hat_core::{ClusterSpec, DeploymentBuilder, Frontend, ProtocolKind, SessionOptions, TxnRecord};
use hat_runtime::{BuildThreaded, RuntimeConfig};

const ALL_ENGINES: [ProtocolKind; 7] = [
    ProtocolKind::Eventual,
    ProtocolKind::ReadCommitted,
    ProtocolKind::Mav,
    ProtocolKind::RampFast,
    ProtocolKind::RampSmall,
    ProtocolKind::Master,
    ProtocolKind::TwoPhaseLocking,
];

fn builder(kind: ProtocolKind) -> DeploymentBuilder {
    DeploymentBuilder::new(kind)
        .seed(42)
        .clusters(ClusterSpec::single_dc(2, 3))
        .sessions_per_cluster(1)
}

/// The scripted workload, generic over the [`Frontend`]. Mixed
/// single-key and multi-key transactions, read-your-writes probes and a
/// prefix scan — enough to exercise reads, the commit path (batched
/// under RAMP), and session clamping on every engine.
fn run_script<F: Frontend>(front: &mut F) -> Vec<TxnRecord> {
    let s = front.open_session(SessionOptions::default());
    front.txn(&s, |t| {
        t.put("acct:a", "100")?;
        t.put("acct:b", "200")
    });
    front.quiesce();
    for round in 0..5 {
        let v = format!("round-{round}");
        front.txn(&s, |t| {
            t.put("acct:a", &v)?;
            t.put("acct:b", &v)?;
            t.put("audit", &v)
        });
        front.quiesce();
        front.txn(&s, |t| Ok((t.get("acct:a")?, t.get("acct:b")?)));
        front.quiesce();
    }
    front.txn(&s, |t| t.scan("acct:"));
    front.quiesce();
    front.take_records()
}

#[test]
fn scripted_records_are_bit_identical_across_backends() {
    for kind in ALL_ENGINES {
        let mut sim = builder(kind).build();
        let sim_records = run_script(&mut sim);

        let mut threaded = builder(kind).build_threaded(RuntimeConfig::default());
        let threaded_records = run_script(&mut threaded);

        assert!(
            !sim_records.is_empty(),
            "{kind:?}: the script must commit transactions"
        );
        assert_eq!(
            sim_records, threaded_records,
            "{kind:?}: sim and threaded backends diverged on a fixed-seed script"
        );
    }
}

/// Same conformance statement with the trace sink armed: tracing is
/// rng-neutral on the simulator and allocation-only on the threaded
/// runtime, so the records must not move. The threaded trace itself is
/// timing-dependent, but its canonical projection — each client's
/// ordered begin/commit/abort sequence — must match across same-script
/// runs and carry one commit per record.
#[test]
fn tracing_leaves_records_identical_and_projection_stable() {
    use hat_core::{SystemConfig, TraceEventKind};

    let traced_builder = |kind: ProtocolKind| {
        let mut cfg = SystemConfig::new(kind);
        cfg.trace = true;
        builder(kind).config(cfg)
    };

    for kind in [ProtocolKind::ReadCommitted, ProtocolKind::RampSmall] {
        let mut sim = builder(kind).build();
        let plain_records = run_script(&mut sim);

        let mut a = traced_builder(kind).build_threaded(RuntimeConfig::default());
        let records_a = run_script(&mut a);
        let proj_a = a.trace_sink().canonical_projection();

        let mut b = traced_builder(kind).build_threaded(RuntimeConfig::default());
        let records_b = run_script(&mut b);
        let proj_b = b.trace_sink().canonical_projection();

        assert_eq!(
            plain_records, records_a,
            "{kind:?}: tracing changed the threaded backend's records"
        );
        assert_eq!(records_a, records_b);
        assert_eq!(
            proj_a, proj_b,
            "{kind:?}: canonical trace projection diverged across same-script runs"
        );
        let commits: usize = proj_a
            .values()
            .flatten()
            .filter(|k| matches!(k, TraceEventKind::TxnCommit { .. }))
            .count();
        assert_eq!(
            commits,
            records_a.len(),
            "{kind:?}: every record must appear as a traced commit"
        );
    }
}
