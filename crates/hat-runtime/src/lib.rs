//! # hat-runtime — threaded runtime for HAT deployments
//!
//! The discrete-event simulator (`hat-sim`) gives determinism; this crate
//! gives *concurrency*: every node (server or client) runs on its own OS
//! thread, exchanging messages over crossbeam channels. The protocol
//! state machines are exactly the ones the simulator drives —
//! [`hat_core::Node`] — so anything verified deterministically also runs
//! for real. Service-time holds and modelled network latency become
//! actual delays on the delivery schedule.
//!
//! Two ways to drive it:
//!
//! * **Closed-loop** ([`Runtime::spawn`]): driver-mode clients replay
//!   `TxnSource` plans; metrics and histories are collected at shutdown.
//! * **Interactive** ([`BuildThreaded::build_threaded`]): a
//!   [`RuntimeFrontend`] injects transaction operations into client
//!   threads over command channels, exposing the same backend-agnostic
//!   [`hat_core::Frontend`] surface as the simulator — the conformance
//!   suite runs identical scripts against both.

pub mod node_loop;
pub mod runtime;

pub use runtime::{BuildThreaded, Runtime, RuntimeConfig, RuntimeFrontend};
