//! # hat-runtime — threaded runtime for HAT deployments
//!
//! The discrete-event simulator (`hat-sim`) gives determinism; this crate
//! gives *concurrency*: every node (server or client) runs on its own OS
//! thread, exchanging messages over crossbeam channels. The protocol
//! state machines are exactly the ones the simulator drives —
//! [`hat_core::Node`] — so anything verified deterministically also runs
//! for real. Service-time holds and modelled network latency become
//! actual delays on the delivery schedule.
//!
//! The runtime runs closed-loop (driver-mode) clients; metrics and
//! recorded histories are collected at shutdown. It is used by the
//! examples and by tests that exercise the protocols under true
//! parallelism (the simulator interleaves; threads genuinely race).

pub mod node_loop;
pub mod runtime;

pub use runtime::{Runtime, RuntimeConfig};
