//! Per-node event loop: a thread owning one [`Node`].
//!
//! Client nodes can optionally carry an *interactive port*: a command
//! channel over which a `RuntimeFrontend` injects transaction operations
//! (begin / get / put / scan / commit …) into the running thread, and a
//! reply channel carrying results back. This is what makes the threaded
//! runtime drivable through the same [`hat_core::Frontend`] surface as
//! the simulator instead of only replaying canned `TxnSource` plans.

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use hat_core::{
    ClientMetrics, HatError, Msg, Node, SessionOptions, TraceEventKind, TraceSink, TxnRecord,
};
use hat_sim::{Actor, Ctx, NodeId, SimTime, TimerId};
use hat_storage::Key;
use rand::rngs::StdRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;

/// Everything a node thread can receive on its inbox. Interactive
/// commands share the inbox with network traffic so their arrival wakes
/// the blocked `recv` immediately (the channel shim has no `select`);
/// a separate command channel would only be noticed on poll ticks.
#[derive(Debug)]
pub enum Envelope {
    /// A network message in flight: deliver `msg` from `from` at `at`.
    Net {
        /// Wall-clock delivery deadline.
        at: Instant,
        /// Sender node.
        from: NodeId,
        /// Payload.
        msg: Msg,
    },
    /// An interactive command from the frontend, with its correlation
    /// sequence number.
    Cmd(u64, ClientCmd),
}

/// An interactive operation injected into a client thread.
#[derive(Debug)]
pub enum ClientCmd {
    /// Replaces the client's session options (frontends send this when
    /// a session is opened over the client).
    SetSession(SessionOptions),
    /// Begins a transaction (clearing any finished one).
    Begin,
    /// Item read.
    Get(Key),
    /// One-shot multi-key read (RAMP-Small `GET_ALL`; other protocols
    /// are handled sequentially by the frontend and never send this).
    GetMany(Vec<Key>),
    /// Write (buffered or sent, per protocol).
    Put(Key, Bytes),
    /// Predicate read.
    Scan(Key),
    /// Internal abort of the open transaction.
    AbortTxn,
    /// Commit the open transaction.
    Commit,
    /// Abandon the open transaction (after an operation failure).
    Abandon,
    /// Drain recorded transaction histories.
    TakeRecords,
    /// Snapshot the client's metrics.
    Metrics,
}

/// Reply to a [`ClientCmd`].
#[derive(Debug)]
pub enum ClientReply {
    /// Command applied (begin / set-session / abort / abandon).
    Ack,
    /// Read result; `None` is the initial `⊥` version.
    Read(Option<Bytes>),
    /// Batch read results, one per requested key in request order.
    ReadMany(Vec<Option<Bytes>>),
    /// Write applied (or buffered).
    Wrote,
    /// Scan result.
    Scanned(Vec<(Key, Bytes)>),
    /// Commit succeeded.
    Committed,
    /// The operation or commit failed.
    Failed(HatError),
    /// Drained histories.
    Records(Vec<TxnRecord>),
    /// Metrics snapshot.
    Metrics(Box<ClientMetrics>),
}

/// The interactive port handed to client threads. Commands arrive via
/// the node's inbox ([`Envelope::Cmd`]); replies carry the command's
/// correlation sequence number, so if the frontend times out on a
/// command and moves on, the late reply's stale sequence lets it be
/// discarded instead of being mistaken for the next command's reply.
pub struct InteractivePort {
    /// Replies to the frontend, tagged with the command's sequence.
    pub reply_tx: Sender<(u64, ClientReply)>,
    /// Wall-clock deadline for one operation/commit before the node
    /// abandons it and reports unavailability.
    pub op_deadline: Duration,
}

/// What the in-flight interactive command is waiting for.
#[derive(Debug, Clone, Copy)]
enum PendingCmd {
    Get,
    GetMany(usize),
    Put,
    Scan,
    Commit,
}

#[derive(Debug)]
enum Due {
    Deliver { from: NodeId, msg: Msg },
    Timer(TimerId),
}

struct Scheduled {
    at: Instant,
    seq: u64,
    due: Due,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// Routing information shared by all node threads.
pub struct Router {
    /// Per-node inboxes.
    pub inboxes: Vec<Sender<Envelope>>,
    /// One-way delivery delay applied to `(from, to)` sends, in
    /// microseconds (precomputed from the latency model means — the
    /// threaded runtime uses deterministic means, not sampled tails).
    pub delay_us: Vec<Vec<u64>>,
}

impl Router {
    /// Delay for a send.
    pub fn delay(&self, from: NodeId, to: NodeId) -> Duration {
        Duration::from_micros(self.delay_us[from as usize][to as usize])
    }
}

/// Runs one node until `stop` is set. Returns the node (with its final
/// state, metrics and histories).
#[allow(clippy::too_many_arguments)]
pub fn run_node(
    mut node: Node,
    id: NodeId,
    rx: Receiver<Envelope>,
    router: Arc<Router>,
    stop: Arc<AtomicBool>,
    mut rng: StdRng,
    epoch: Instant,
    interactive: Option<InteractivePort>,
    trace: TraceSink,
) -> Node {
    let mut heap: BinaryHeap<Reverse<Scheduled>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut pending_cmd: Option<(u64, PendingCmd, Instant)> = None;
    let mut cmd_queue: std::collections::VecDeque<(u64, ClientCmd)> =
        std::collections::VecDeque::new();

    let now_sim = |epoch: Instant| SimTime(epoch.elapsed().as_micros() as u64);

    // on_start
    {
        let mut ctx = Ctx::detached(id, now_sim(epoch), &mut rng);
        node.on_start(&mut ctx);
        let (sends, timers) = ctx.into_outputs();
        dispatch_outputs(
            id, sends, timers, &router, &mut heap, &mut seq, &trace, epoch,
        );
    }

    loop {
        // deliver everything due
        let now = Instant::now();
        while heap.peek().map(|Reverse(s)| s.at <= now).unwrap_or(false) {
            let Reverse(s) = heap.pop().unwrap();
            let mut ctx = Ctx::detached(id, now_sim(epoch), &mut rng);
            match s.due {
                Due::Deliver { from, msg } => {
                    if trace.is_enabled() {
                        trace.record(
                            now_sim(epoch).as_micros(),
                            id,
                            TraceEventKind::MsgRecv {
                                from,
                                to: id,
                                label: msg.label(),
                                bytes: msg.approx_bytes(),
                            },
                        );
                    }
                    node.on_message(&mut ctx, from, msg)
                }
                Due::Timer(tag) => node.on_timer(&mut ctx, tag),
            }
            let (sends, timers) = ctx.into_outputs();
            dispatch_outputs(
                id, sends, timers, &router, &mut heap, &mut seq, &trace, epoch,
            );
        }
        // interactive port: resolve a finished command, accept new ones
        if let Some(port) = &interactive {
            service_interactive(
                &mut node,
                id,
                port,
                &mut pending_cmd,
                &mut cmd_queue,
                &router,
                &mut heap,
                &mut seq,
                &mut rng,
                epoch,
                &trace,
            );
        }
        if stop.load(Ordering::Relaxed) {
            break;
        }
        // wait for the next due event or an incoming envelope; command
        // arrivals wake the recv immediately (shared inbox)
        let idle_cap = Duration::from_millis(5);
        let timeout = heap
            .peek()
            .map(|Reverse(s)| s.at.saturating_duration_since(Instant::now()))
            .unwrap_or(idle_cap)
            .min(idle_cap);
        let mut enqueue = |env: Envelope, seq: &mut u64| match env {
            Envelope::Net { at, from, msg } => {
                *seq += 1;
                heap.push(Reverse(Scheduled {
                    at,
                    seq: *seq,
                    due: Due::Deliver { from, msg },
                }));
            }
            Envelope::Cmd(cmd_seq, cmd) => cmd_queue.push_back((cmd_seq, cmd)),
        };
        match rx.recv_timeout(timeout) {
            Ok(env) => {
                enqueue(env, &mut seq);
                // drain whatever else is queued without blocking
                while let Ok(env) = rx.try_recv() {
                    enqueue(env, &mut seq);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    node
}

/// Resolves the in-flight interactive command if its network round
/// finished (or timed out), then accepts new commands while idle.
#[allow(clippy::too_many_arguments)]
fn service_interactive(
    node: &mut Node,
    id: NodeId,
    port: &InteractivePort,
    pending_cmd: &mut Option<(u64, PendingCmd, Instant)>,
    cmd_queue: &mut std::collections::VecDeque<(u64, ClientCmd)>,
    router: &Arc<Router>,
    heap: &mut BinaryHeap<Reverse<Scheduled>>,
    seq: &mut u64,
    rng: &mut StdRng,
    epoch: Instant,
    trace: &TraceSink,
) {
    let busy = |node: &Node| node.as_client().map(|c| c.busy()).unwrap_or(false);

    if let Some((cmd_seq, kind, deadline)) = *pending_cmd {
        if !busy(node) {
            *pending_cmd = None;
            let mut ctx = Ctx::detached(id, SimTime(epoch.elapsed().as_micros() as u64), rng);
            let reply = resolve_cmd(node, &mut ctx, kind);
            let (sends, timers) = ctx.into_outputs();
            dispatch_outputs(id, sends, timers, router, heap, seq, trace, epoch);
            let _ = port.reply_tx.send((cmd_seq, reply));
        } else if Instant::now() >= deadline {
            *pending_cmd = None;
            // Abandon with a full Ctx: dropping the transaction must
            // release any held 2PL locks (unlock messages go out here).
            let mut ctx = Ctx::detached(id, SimTime(epoch.elapsed().as_micros() as u64), rng);
            if let Some(c) = node.as_client_mut() {
                c.abandon(&mut ctx);
            }
            let (sends, timers) = ctx.into_outputs();
            dispatch_outputs(id, sends, timers, router, heap, seq, trace, epoch);
            let _ = port.reply_tx.send((
                cmd_seq,
                ClientReply::Failed(HatError::Unavailable { key: None }),
            ));
        }
    }
    // Accept commands only while nothing is in flight: the frontend
    // issues one operation at a time and blocks on the reply.
    while pending_cmd.is_none() {
        let Some((cmd_seq, cmd)) = cmd_queue.pop_front() else {
            break;
        };
        let mut ctx = Ctx::detached(id, SimTime(epoch.elapsed().as_micros() as u64), rng);
        let outcome = apply_cmd(node, &mut ctx, cmd);
        let reply = match outcome {
            CmdOutcome::Replied(reply) => Some(reply),
            CmdOutcome::Pending(kind) => {
                if busy(node) {
                    *pending_cmd = Some((cmd_seq, kind, Instant::now() + port.op_deadline));
                    None
                } else {
                    // completed synchronously (cache hit, buffered
                    // write, instant commit)
                    Some(resolve_cmd(node, &mut ctx, kind))
                }
            }
        };
        let (sends, timers) = ctx.into_outputs();
        dispatch_outputs(id, sends, timers, router, heap, seq, trace, epoch);
        if let Some(reply) = reply {
            let _ = port.reply_tx.send((cmd_seq, reply));
        }
    }
}

/// What applying a command produced: an immediate reply, or a network
/// round to wait on.
enum CmdOutcome {
    Replied(ClientReply),
    Pending(PendingCmd),
}

/// Applies one command against the client actor.
fn apply_cmd(node: &mut Node, ctx: &mut Ctx<'_, Msg>, cmd: ClientCmd) -> CmdOutcome {
    let client = node.as_client_mut().expect("interactive port on a client");
    match cmd {
        ClientCmd::SetSession(opts) => {
            client.set_session_options(opts);
            CmdOutcome::Replied(ClientReply::Ack)
        }
        ClientCmd::Begin => {
            client.clear_finished();
            client.begin(ctx.now());
            CmdOutcome::Replied(ClientReply::Ack)
        }
        ClientCmd::Get(key) => {
            client.issue_read(ctx, key);
            CmdOutcome::Pending(PendingCmd::Get)
        }
        ClientCmd::GetMany(keys) => {
            let n = keys.len();
            client.issue_read_many(ctx, keys);
            CmdOutcome::Pending(PendingCmd::GetMany(n))
        }
        ClientCmd::Put(key, value) => {
            client.issue_write(ctx, key, value);
            CmdOutcome::Pending(PendingCmd::Put)
        }
        ClientCmd::Scan(prefix) => {
            client.issue_scan(ctx, prefix);
            CmdOutcome::Pending(PendingCmd::Scan)
        }
        ClientCmd::AbortTxn => {
            client.abort(ctx);
            CmdOutcome::Replied(ClientReply::Ack)
        }
        ClientCmd::Commit => {
            client.start_commit(ctx);
            CmdOutcome::Pending(PendingCmd::Commit)
        }
        ClientCmd::Abandon => {
            client.abandon(ctx);
            CmdOutcome::Replied(ClientReply::Ack)
        }
        ClientCmd::TakeRecords => CmdOutcome::Replied(ClientReply::Records(client.take_records())),
        ClientCmd::Metrics => {
            CmdOutcome::Replied(ClientReply::Metrics(Box::new(client.metrics.clone())))
        }
    }
}

/// Builds the reply for a command whose network round has resolved.
/// The value/outcome mapping lives on [`hat_core::Client`]
/// (`last_read_value` / `op_interrupted` / `commit_result`), shared
/// with the simulator backend so the two cannot diverge.
fn resolve_cmd(node: &mut Node, ctx: &mut Ctx<'_, Msg>, kind: PendingCmd) -> ClientReply {
    let client = node.as_client_mut().expect("interactive port on a client");
    match kind {
        PendingCmd::Get | PendingCmd::GetMany(_) | PendingCmd::Put | PendingCmd::Scan => {
            // A transaction finished mid-operation (2PL lock timeout →
            // external abort) fails the operation itself.
            if let Some(e) = client.op_interrupted() {
                return ClientReply::Failed(e);
            }
            match kind {
                PendingCmd::Get => ClientReply::Read(client.last_read_value()),
                PendingCmd::GetMany(n) => ClientReply::ReadMany(client.last_read_values(n)),
                PendingCmd::Put => ClientReply::Wrote,
                PendingCmd::Scan => ClientReply::Scanned(client.last_scan().to_vec()),
                PendingCmd::Commit => unreachable!(),
            }
        }
        PendingCmd::Commit => match client.commit_result(ctx) {
            Ok(()) => ClientReply::Committed,
            Err(e) => ClientReply::Failed(e),
        },
    }
}

#[allow(clippy::too_many_arguments)]
fn dispatch_outputs(
    id: NodeId,
    sends: Vec<(hat_sim::SimDuration, NodeId, Msg)>,
    timers: Vec<(hat_sim::SimDuration, TimerId)>,
    router: &Router,
    heap: &mut BinaryHeap<Reverse<Scheduled>>,
    seq: &mut u64,
    trace: &TraceSink,
    epoch: Instant,
) {
    let now = Instant::now();
    for (hold, to, msg) in sends {
        if trace.is_enabled() {
            trace.record(
                epoch.elapsed().as_micros() as u64,
                id,
                TraceEventKind::MsgSend {
                    from: id,
                    to,
                    label: msg.label(),
                    bytes: msg.approx_bytes(),
                },
            );
        }
        let at = now + Duration::from_micros(hold.as_micros()) + router.delay(id, to);
        // A full inbox or a disconnected peer behaves like a lossy
        // network — HAT protocols tolerate both.
        let _ = router.inboxes[to as usize].send(Envelope::Net { at, from: id, msg });
    }
    for (delay, tag) in timers {
        *seq += 1;
        heap.push(Reverse(Scheduled {
            at: now + Duration::from_micros(delay.as_micros()),
            seq: *seq,
            due: Due::Timer(tag),
        }));
    }
}
