//! Per-node event loop: a thread owning one [`Node`].

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use hat_core::{Msg, Node};
use hat_sim::{Actor, Ctx, NodeId, SimTime, TimerId};
use rand::rngs::StdRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A message in flight: deliver `msg` from `from` at `at`.
#[derive(Debug)]
pub struct Envelope {
    /// Wall-clock delivery deadline.
    pub at: Instant,
    /// Sender node.
    pub from: NodeId,
    /// Payload.
    pub msg: Msg,
}

#[derive(Debug)]
enum Due {
    Deliver { from: NodeId, msg: Msg },
    Timer(TimerId),
}

struct Scheduled {
    at: Instant,
    seq: u64,
    due: Due,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// Routing information shared by all node threads.
pub struct Router {
    /// Per-node inboxes.
    pub inboxes: Vec<Sender<Envelope>>,
    /// One-way delivery delay applied to `(from, to)` sends, in
    /// microseconds (precomputed from the latency model means — the
    /// threaded runtime uses deterministic means, not sampled tails).
    pub delay_us: Vec<Vec<u64>>,
}

impl Router {
    /// Delay for a send.
    pub fn delay(&self, from: NodeId, to: NodeId) -> Duration {
        Duration::from_micros(self.delay_us[from as usize][to as usize])
    }
}

/// Runs one node until `stop` is set. Returns the node (with its final
/// state, metrics and histories).
pub fn run_node(
    mut node: Node,
    id: NodeId,
    rx: Receiver<Envelope>,
    router: Arc<Router>,
    stop: Arc<AtomicBool>,
    mut rng: StdRng,
    epoch: Instant,
) -> Node {
    let mut heap: BinaryHeap<Reverse<Scheduled>> = BinaryHeap::new();
    let mut seq = 0u64;

    let now_sim = |epoch: Instant| SimTime(epoch.elapsed().as_micros() as u64);

    // on_start
    {
        let mut ctx = Ctx::detached(id, now_sim(epoch), &mut rng);
        node.on_start(&mut ctx);
        let (sends, timers) = ctx.into_outputs();
        dispatch_outputs(id, sends, timers, &router, &mut heap, &mut seq);
    }

    loop {
        // deliver everything due
        let now = Instant::now();
        while heap.peek().map(|Reverse(s)| s.at <= now).unwrap_or(false) {
            let Reverse(s) = heap.pop().unwrap();
            let mut ctx = Ctx::detached(id, now_sim(epoch), &mut rng);
            match s.due {
                Due::Deliver { from, msg } => node.on_message(&mut ctx, from, msg),
                Due::Timer(tag) => node.on_timer(&mut ctx, tag),
            }
            let (sends, timers) = ctx.into_outputs();
            dispatch_outputs(id, sends, timers, &router, &mut heap, &mut seq);
        }
        if stop.load(Ordering::Relaxed) {
            break;
        }
        // wait for the next due event or an incoming envelope
        let timeout = heap
            .peek()
            .map(|Reverse(s)| s.at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(5))
            .min(Duration::from_millis(5));
        match rx.recv_timeout(timeout) {
            Ok(env) => {
                seq += 1;
                heap.push(Reverse(Scheduled {
                    at: env.at,
                    seq,
                    due: Due::Deliver {
                        from: env.from,
                        msg: env.msg,
                    },
                }));
                // drain whatever else is queued without blocking
                while let Ok(env) = rx.try_recv() {
                    seq += 1;
                    heap.push(Reverse(Scheduled {
                        at: env.at,
                        seq,
                        due: Due::Deliver {
                            from: env.from,
                            msg: env.msg,
                        },
                    }));
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    node
}

fn dispatch_outputs(
    id: NodeId,
    sends: Vec<(hat_sim::SimDuration, NodeId, Msg)>,
    timers: Vec<(hat_sim::SimDuration, TimerId)>,
    router: &Router,
    heap: &mut BinaryHeap<Reverse<Scheduled>>,
    seq: &mut u64,
) {
    let now = Instant::now();
    for (hold, to, msg) in sends {
        let at = now + Duration::from_micros(hold.as_micros()) + router.delay(id, to);
        // A full inbox or a disconnected peer behaves like a lossy
        // network — HAT protocols tolerate both.
        let _ = router.inboxes[to as usize].send(Envelope { at, from: id, msg });
    }
    for (delay, tag) in timers {
        *seq += 1;
        heap.push(Reverse(Scheduled {
            at: now + Duration::from_micros(delay.as_micros()),
            seq: *seq,
            due: Due::Timer(tag),
        }));
    }
}
