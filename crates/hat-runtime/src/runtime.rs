//! The threaded runtime: spawn, run, collect.

use crate::node_loop::{run_node, Envelope, Router};
use crossbeam::channel::unbounded;
use hat_core::{ClientMetrics, Node, SimulationBuilder, TxnRecord};
use hat_sim::{LatencyModel, NodeId, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Threaded runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Scale factor applied to modelled network latency (1.0 = the
    /// EC2-calibrated means; 0.0 = in-process speed). Tests use small
    /// factors so wall-clock stays short.
    pub latency_scale: f64,
    /// RNG seed for per-node generators.
    pub seed: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            latency_scale: 0.01,
            seed: 7,
        }
    }
}

/// A running threaded deployment.
pub struct Runtime {
    handles: Vec<JoinHandle<Node>>,
    stop: Arc<AtomicBool>,
    clients: Vec<NodeId>,
    started: Instant,
}

impl Runtime {
    /// Spawns every node of `builder`'s deployment on its own thread.
    /// Clients must be driver-mode (installed via
    /// [`SimulationBuilder::drivers`]) to make progress.
    pub fn spawn(builder: SimulationBuilder, config: RuntimeConfig) -> Runtime {
        let (_engine_cfg, topology, nodes, layout, _sys) = builder.build_parts();
        let clients = layout.clients.clone();
        let n = topology.len();

        let mut inboxes = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Envelope>();
            inboxes.push(tx);
            receivers.push(rx);
        }
        let delay_us = build_delays(&topology, config.latency_scale);
        let router = Arc::new(Router { inboxes, delay_us });
        let stop = Arc::new(AtomicBool::new(false));
        let started = Instant::now();

        let mut handles = Vec::with_capacity(n);
        for (i, node) in nodes.into_iter().enumerate() {
            let rx = receivers.remove(0);
            let router = Arc::clone(&router);
            let stop = Arc::clone(&stop);
            let rng = StdRng::seed_from_u64(config.seed ^ (i as u64).wrapping_mul(0x9E37));
            let id = i as NodeId;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("hat-node-{i}"))
                    .spawn(move || run_node(node, id, rx, router, stop, rng, started))
                    .expect("spawn node thread"),
            );
        }
        Runtime {
            handles,
            stop,
            clients,
            started,
        }
    }

    /// Lets the deployment run for `d` of wall-clock time.
    pub fn run_for(&self, d: Duration) {
        std::thread::sleep(d);
    }

    /// Elapsed wall-clock time since spawn.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Stops all nodes and collects them. Returns `(nodes, aggregated
    /// client metrics, all transaction records)`.
    pub fn shutdown(self) -> (Vec<Node>, ClientMetrics, Vec<TxnRecord>) {
        self.stop.store(true, Ordering::Relaxed);
        let mut nodes: Vec<Node> = self
            .handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect();
        let mut metrics = ClientMetrics::default();
        let mut records = Vec::new();
        for &c in &self.clients {
            if let Some(client) = nodes[c as usize].as_client_mut() {
                metrics.merge(&client.metrics);
                records.extend(client.take_records());
            }
        }
        records.sort_by_key(|r| (r.session, r.session_seq));
        (nodes, metrics, records)
    }
}

/// Precomputes mean one-way delays between all node pairs.
fn build_delays(topology: &Topology, scale: f64) -> Vec<Vec<u64>> {
    let model = LatencyModel::default();
    let n = topology.len();
    let mut d = vec![vec![0u64; n]; n];
    for (i, a) in topology.iter() {
        for (j, b) in topology.iter() {
            if i == j {
                continue;
            }
            let class = LatencyModel::classify(a, b);
            let one_way_ms = model.mean_rtt_ms(class) / 2.0 * scale;
            d[i as usize][j as usize] = (one_way_ms * 1000.0) as u64;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_core::client::TxnSource;
    use hat_core::{ClusterSpec, ProtocolKind, SessionLevel, SessionOptions};
    use hat_workloads_shim::*;

    /// Minimal local YCSB-ish source to avoid a cyclic dev-dependency on
    /// hat-workloads.
    mod hat_workloads_shim {
        use hat_core::{Op, TxnSpec};

        #[derive(Debug)]
        pub struct MiniSource {
            pub n: u64,
        }
        impl hat_core::client::TxnSource for MiniSource {
            fn next_txn(&mut self, rng: &mut rand::rngs::StdRng) -> Option<TxnSpec> {
                use rand::Rng;
                if self.n == 0 {
                    return None;
                }
                self.n -= 1;
                let k = format!("key{}", rng.gen_range(0..20));
                Some(TxnSpec::new(vec![
                    Op::Read(k.clone().into_bytes().into()),
                    Op::Write(k.into_bytes().into(), bytes::Bytes::from_static(b"v")),
                ]))
            }
        }
    }

    fn drivers(count: usize, txns: u64) -> Vec<Box<dyn TxnSource>> {
        (0..count)
            .map(|_| Box::new(MiniSource { n: txns }) as Box<dyn TxnSource>)
            .collect()
    }

    #[test]
    fn threaded_eventual_commits_transactions() {
        let builder = SimulationBuilder::new(ProtocolKind::Eventual)
            .seed(1)
            .clusters(ClusterSpec::single_dc(2, 2))
            .drivers(drivers(4, 25));
        let rt = Runtime::spawn(builder, RuntimeConfig::default());
        rt.run_for(Duration::from_millis(400));
        let (_nodes, metrics, records) = rt.shutdown();
        assert!(
            metrics.committed >= 50,
            "expected most of 100 txns committed, got {}",
            metrics.committed
        );
        assert_eq!(records.len() as u64, metrics.committed);
    }

    #[test]
    fn threaded_mav_is_history_clean() {
        let builder = SimulationBuilder::new(ProtocolKind::Mav)
            .seed(2)
            .clusters(ClusterSpec::single_dc(2, 2))
            .session(SessionOptions {
                level: SessionLevel::Monotonic,
                sticky: true,
            })
            .drivers(drivers(3, 20));
        let rt = Runtime::spawn(builder, RuntimeConfig::default());
        rt.run_for(Duration::from_millis(400));
        let (nodes, metrics, _records) = rt.shutdown();
        assert!(metrics.committed > 0);
        // the MAV required-bound invariant holds under real races too
        let misses: u64 = nodes
            .iter()
            .filter_map(|n| n.as_server())
            .map(|s| s.mav_required_misses())
            .sum();
        assert_eq!(misses, 0);
    }

    #[test]
    fn threaded_master_serves_all_clients() {
        let builder = SimulationBuilder::new(ProtocolKind::Master)
            .seed(3)
            .clusters(ClusterSpec::single_dc(2, 2))
            .drivers(drivers(2, 10));
        let rt = Runtime::spawn(builder, RuntimeConfig::default());
        rt.run_for(Duration::from_millis(300));
        let (_, metrics, _) = rt.shutdown();
        assert_eq!(metrics.committed, 20, "all txns should finish");
    }
}
