//! The threaded runtime: spawn, run, collect — and the interactive
//! [`RuntimeFrontend`] implementing [`hat_core::Frontend`].

use crate::node_loop::{run_node, ClientCmd, ClientReply, Envelope, InteractivePort, Router};
use crossbeam::channel::{unbounded, Receiver, Sender};
use hat_core::{
    ClientMetrics, ClusterLayout, DeploymentBuilder, Frontend, HatError, Node, Session,
    SessionOptions, SystemConfig, TraceEvent, TraceSink, TxnBackend, TxnRecord,
};
use hat_obs::ObsSink;
use hat_sim::{LatencyModel, NodeId, SimDuration, Topology};
use hat_storage::Key;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;

/// Threaded runtime configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Scale factor applied to modelled network latency (1.0 = the
    /// EC2-calibrated means; 0.0 = in-process speed). Tests use small
    /// factors so wall-clock stays short.
    pub latency_scale: f64,
    /// RNG seed for per-node generators.
    pub seed: u64,
    /// Wall-clock per-operation deadline override. `None` uses the
    /// deployment's `SystemConfig::op_deadline` (30 s by default) as
    /// real time — appropriate at full latency scale, but a partition
    /// probe at a small `latency_scale` may want unavailability to
    /// surface much sooner.
    pub op_deadline: Option<Duration>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            latency_scale: 0.01,
            seed: 7,
            op_deadline: None,
        }
    }
}

/// A running threaded deployment.
pub struct Runtime {
    handles: Vec<JoinHandle<Node>>,
    stop: Arc<AtomicBool>,
    clients: Vec<NodeId>,
    started: Instant,
    trace: TraceSink,
    obs: ObsSink,
    router: Arc<Router>,
    layout: Arc<ClusterLayout>,
}

/// The frontend's per-client handle into a node thread. Commands go
/// into the node's regular inbox (waking its blocked `recv`); replies
/// are correlated by sequence number so a reply that arrives after its
/// command timed out is discarded instead of being mistaken for the
/// next command's reply.
struct FrontPort {
    cmd_tx: Sender<Envelope>,
    reply_rx: Receiver<(u64, ClientReply)>,
    next_seq: std::sync::atomic::AtomicU64,
}

impl Runtime {
    /// Spawns every node of `builder`'s deployment on its own thread.
    /// Clients must be driver-mode (installed via
    /// [`DeploymentBuilder::drivers`]) to make progress; for interactive
    /// transactions use [`BuildThreaded::build_threaded`] instead.
    pub fn spawn(builder: DeploymentBuilder, config: RuntimeConfig) -> Runtime {
        Self::spawn_parts(builder, config, false).0
    }

    /// Shared spawn path. With `interactive`, every client node gets a
    /// command/reply port returned alongside the runtime.
    fn spawn_parts(
        builder: DeploymentBuilder,
        config: RuntimeConfig,
        interactive: bool,
    ) -> (
        Runtime,
        Vec<FrontPort>,
        Arc<ClusterLayout>,
        Arc<SystemConfig>,
        Duration,
    ) {
        let (_engine_cfg, topology, nodes, layout, sys, trace, obs) = builder.build_parts();
        let clients = layout.clients.clone();
        let n = topology.len();

        let mut inboxes = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Envelope>();
            inboxes.push(tx);
            receivers.push(rx);
        }
        let delay_us = build_delays(&topology, config.latency_scale);
        let router = Arc::new(Router { inboxes, delay_us });
        let stop = Arc::new(AtomicBool::new(false));
        let started = Instant::now();
        let op_deadline = config
            .op_deadline
            .unwrap_or_else(|| Duration::from_micros(sys.op_deadline.as_micros()));

        let mut ports = Vec::new();
        let mut node_ports: Vec<Option<InteractivePort>> = (0..n).map(|_| None).collect();
        if interactive {
            for &c in &clients {
                let (reply_tx, reply_rx) = unbounded::<(u64, ClientReply)>();
                node_ports[c as usize] = Some(InteractivePort {
                    reply_tx,
                    op_deadline,
                });
                ports.push(FrontPort {
                    // Commands share the node's inbox so their arrival
                    // wakes the event loop immediately.
                    cmd_tx: router.inboxes[c as usize].clone(),
                    reply_rx,
                    next_seq: std::sync::atomic::AtomicU64::new(0),
                });
            }
        }

        let mut handles = Vec::with_capacity(n);
        for (i, node) in nodes.into_iter().enumerate() {
            let rx = receivers.remove(0);
            let router = Arc::clone(&router);
            let stop = Arc::clone(&stop);
            let rng = StdRng::seed_from_u64(config.seed ^ (i as u64).wrapping_mul(0x9E37));
            let id = i as NodeId;
            let port = node_ports[i].take();
            let node_trace = trace.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("hat-node-{i}"))
                    .spawn(move || {
                        run_node(node, id, rx, router, stop, rng, started, port, node_trace)
                    })
                    .expect("spawn node thread"),
            );
        }
        (
            Runtime {
                handles,
                stop,
                clients,
                started,
                trace,
                obs,
                router,
                layout: Arc::clone(&layout),
            },
            ports,
            layout,
            sys,
            op_deadline,
        )
    }

    /// Starts a live handoff of ring token `token` to the server at
    /// `to_position` of each cluster, mirroring
    /// [`hat_core::SimFrontend::begin_handoff`]: the `BeginHandoff`
    /// message is broadcast to every server and only the token's
    /// current owner acts on it, so chained handoffs need no ownership
    /// tracking here.
    pub fn begin_handoff(&self, token: u32, to_position: u32) {
        assert!(
            (to_position as usize) < self.layout.shards_per_cluster(),
            "position {to_position} out of range"
        );
        let at = Instant::now();
        for cluster in &self.layout.servers {
            let to = cluster[to_position as usize];
            for &s in cluster {
                let _ = self.router.inboxes[s as usize].send(Envelope::Net {
                    at,
                    from: s,
                    msg: hat_core::Msg::BeginHandoff { token, to },
                });
            }
        }
    }

    /// Lets the deployment run for `d` of wall-clock time.
    pub fn run_for(&self, d: Duration) {
        std::thread::sleep(d);
    }

    /// Elapsed wall-clock time since spawn.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The deployment-wide trace sink (no-op unless
    /// `SystemConfig::trace` was set on the builder's configuration).
    pub fn trace_sink(&self) -> &TraceSink {
        &self.trace
    }

    /// The deployment-wide observability sink (no-op unless
    /// `SystemConfig::obs` was enabled on the builder's configuration).
    /// The threaded runtime shares the client-fed pieces — the metrics
    /// registry and the streaming consistency checker — with the
    /// simulator; the time-series sampler and the visibility prober are
    /// driven off virtual time and stay simulator-only.
    pub fn obs_sink(&self) -> &ObsSink {
        &self.obs
    }

    /// Stops all nodes and collects them. Returns `(nodes, aggregated
    /// client metrics, all transaction records)`.
    pub fn shutdown(self) -> (Vec<Node>, ClientMetrics, Vec<TxnRecord>) {
        self.stop.store(true, Ordering::Relaxed);
        let mut nodes: Vec<Node> = self
            .handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect();
        let mut metrics = ClientMetrics::default();
        let mut records = Vec::new();
        for &c in &self.clients {
            if let Some(client) = nodes[c as usize].as_client_mut() {
                metrics.merge(&client.metrics);
                records.extend(client.take_records());
            }
        }
        records.sort_by_key(|r| (r.session, r.session_seq));
        (nodes, metrics, records)
    }
}

/// Extension trait giving [`DeploymentBuilder`] a threaded-backend
/// `build`, mirroring `build()` for the simulator: the same deployment
/// description, executed on one OS thread per node with interactive
/// sessions injected over command channels.
pub trait BuildThreaded {
    /// Builds the deployment on the threaded backend.
    fn build_threaded(self, config: RuntimeConfig) -> RuntimeFrontend;
}

impl BuildThreaded for DeploymentBuilder {
    fn build_threaded(self, config: RuntimeConfig) -> RuntimeFrontend {
        let latency_scale = config.latency_scale;
        // The frontend's roundtrip timeout is this same deadline plus
        // slack — deriving both from one value keeps the "node replies
        // or abandons before the frontend gives up" invariant.
        let (rt, ports, layout, sys, op_deadline) = Runtime::spawn_parts(self, config, true);
        RuntimeFrontend {
            rt: Some(rt),
            ports,
            layout,
            config: sys,
            latency_scale,
            op_deadline,
            opened: 0,
        }
    }
}

/// The threaded-runtime [`Frontend`]: interactive transactions are
/// injected into client threads over command channels and block the
/// caller until the client's network round resolves — the same
/// synchronous surface [`hat_core::SimFrontend`] offers over virtual
/// time.
pub struct RuntimeFrontend {
    rt: Option<Runtime>,
    ports: Vec<FrontPort>,
    layout: Arc<ClusterLayout>,
    config: Arc<SystemConfig>,
    latency_scale: f64,
    op_deadline: Duration,
    opened: usize,
}

impl RuntimeFrontend {
    /// The cluster layout.
    pub fn layout(&self) -> &ClusterLayout {
        &self.layout
    }

    /// The deployment configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Stops all node threads and returns `(nodes, aggregated client
    /// metrics, all transaction records)`.
    pub fn shutdown(mut self) -> (Vec<Node>, ClientMetrics, Vec<TxnRecord>) {
        self.rt.take().expect("runtime running").shutdown()
    }

    /// The deployment-wide trace sink (no-op unless
    /// `SystemConfig::trace` was set on the builder's configuration).
    pub fn trace_sink(&self) -> &TraceSink {
        self.rt.as_ref().expect("runtime running").trace_sink()
    }

    /// Snapshot of the structured trace so far, ordered by
    /// `(time, sequence)`. Empty when tracing is disabled.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace_sink().events()
    }

    /// The deployment-wide observability sink; see [`Runtime::obs_sink`].
    pub fn obs_sink(&self) -> &ObsSink {
        self.rt.as_ref().expect("runtime running").obs_sink()
    }

    /// Fallible [`Frontend::session_metrics`]: reports an unreachable or
    /// wedged client thread as [`HatError::Unavailable`] instead of
    /// panicking.
    pub fn try_session_metrics(&self, session: &Session) -> Result<ClientMetrics, HatError> {
        match self.roundtrip(session.index() as usize, ClientCmd::Metrics)? {
            ClientReply::Metrics(m) => Ok(*m),
            other => panic!("protocol mismatch: expected Metrics, got {other:?}"),
        }
    }

    /// Sends `cmd` to client slot `idx` and waits for *its* reply,
    /// discarding stale replies whose command already timed out.
    fn roundtrip(&self, idx: usize, cmd: ClientCmd) -> Result<ClientReply, HatError> {
        let port = &self.ports[idx];
        let seq = port
            .next_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if port.cmd_tx.send(Envelope::Cmd(seq, cmd)).is_err() {
            return Err(HatError::Unavailable { key: None });
        }
        // The node abandons and replies on its own op deadline; the
        // extra slack only covers scheduling.
        let deadline = Instant::now() + self.op_deadline + Duration::from_secs(5);
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match port.reply_rx.recv_timeout(remaining) {
                Ok((reply_seq, reply)) if reply_seq == seq => return Ok(reply),
                // A reply for an earlier command that timed out here
                // after the node had already started it: drop it.
                Ok((reply_seq, _)) if reply_seq < seq => continue,
                Ok((reply_seq, _)) => {
                    unreachable!("reply {reply_seq} from the future (awaiting {seq})")
                }
                Err(_) => return Err(HatError::Unavailable { key: None }),
            }
        }
    }

    /// Starts a live handoff of ring token `token` to the server at
    /// `to_position` of each cluster (see [`Runtime::begin_handoff`]).
    pub fn begin_handoff(&self, token: u32, to_position: u32) {
        self.rt
            .as_ref()
            .expect("runtime running")
            .begin_handoff(token, to_position);
    }

    fn expect_ack(&self, idx: usize, cmd: ClientCmd) -> Result<(), HatError> {
        match self.roundtrip(idx, cmd)? {
            ClientReply::Ack => Ok(()),
            ClientReply::Failed(e) => Err(e),
            other => panic!("protocol mismatch: expected Ack, got {other:?}"),
        }
    }
}

impl Drop for RuntimeFrontend {
    fn drop(&mut self) {
        if let Some(mut rt) = self.rt.take() {
            // Swallow node-thread panics here: panicking inside drop
            // while already unwinding would abort the process and mask
            // the root cause (use `shutdown()` to observe them).
            rt.stop.store(true, Ordering::Relaxed);
            for h in rt.handles.drain(..) {
                let _ = h.join();
            }
        }
    }
}

impl TxnBackend for RuntimeFrontend {
    fn begin(&mut self, session: &Session) -> Result<(), HatError> {
        self.expect_ack(session.index() as usize, ClientCmd::Begin)
    }

    fn exec_get(&mut self, session: &Session, key: Key) -> Result<Option<Bytes>, HatError> {
        match self.roundtrip(session.index() as usize, ClientCmd::Get(key))? {
            ClientReply::Read(v) => Ok(v),
            ClientReply::Failed(e) => Err(e),
            other => panic!("protocol mismatch: expected Read, got {other:?}"),
        }
    }

    fn exec_get_many(
        &mut self,
        session: &Session,
        keys: Vec<Key>,
    ) -> Result<Vec<Option<Bytes>>, HatError> {
        // Only RAMP-Small has a native one-shot batch read; everything
        // else reads sequentially (the trait default).
        if self.config.protocol != hat_core::ProtocolKind::RampSmall {
            return keys
                .into_iter()
                .map(|k| self.exec_get(session, k))
                .collect();
        }
        match self.roundtrip(session.index() as usize, ClientCmd::GetMany(keys))? {
            ClientReply::ReadMany(vs) => Ok(vs),
            ClientReply::Failed(e) => Err(e),
            other => panic!("protocol mismatch: expected ReadMany, got {other:?}"),
        }
    }

    fn exec_put(&mut self, session: &Session, key: Key, value: Bytes) -> Result<(), HatError> {
        match self.roundtrip(session.index() as usize, ClientCmd::Put(key, value))? {
            ClientReply::Wrote => Ok(()),
            ClientReply::Failed(e) => Err(e),
            other => panic!("protocol mismatch: expected Wrote, got {other:?}"),
        }
    }

    fn exec_scan(&mut self, session: &Session, prefix: Key) -> Result<Vec<(Key, Bytes)>, HatError> {
        match self.roundtrip(session.index() as usize, ClientCmd::Scan(prefix))? {
            ClientReply::Scanned(v) => Ok(v),
            ClientReply::Failed(e) => Err(e),
            other => panic!("protocol mismatch: expected Scanned, got {other:?}"),
        }
    }

    fn exec_abort(&mut self, session: &Session) {
        let _ = self.expect_ack(session.index() as usize, ClientCmd::AbortTxn);
    }

    fn commit(&mut self, session: &Session) -> Result<(), HatError> {
        match self.roundtrip(session.index() as usize, ClientCmd::Commit)? {
            ClientReply::Committed => Ok(()),
            ClientReply::Failed(e) => Err(e),
            other => panic!("protocol mismatch: expected Committed, got {other:?}"),
        }
    }

    fn abandon(&mut self, session: &Session) {
        let _ = self.expect_ack(session.index() as usize, ClientCmd::Abandon);
    }
}

impl Frontend for RuntimeFrontend {
    fn open_session(&mut self, opts: SessionOptions) -> Session {
        assert!(
            self.opened < self.ports.len(),
            "deployment provisions {} session slot(s); raise \
             DeploymentBuilder::sessions_per_cluster",
            self.ports.len()
        );
        let idx = self.opened;
        self.opened += 1;
        self.expect_ack(idx, ClientCmd::SetSession(opts))
            .expect("session open");
        Session::from_parts(idx as u32, self.layout.clients[idx], opts)
    }

    fn run_for(&mut self, d: SimDuration) {
        std::thread::sleep(Duration::from_micros(d.as_micros()));
    }

    fn quiesce_duration(&self) -> SimDuration {
        // Network delays are scaled by `latency_scale` but timers (the
        // anti-entropy term) run in real time; scale only the WAN term,
        // with a floor absorbing thread-scheduling jitter.
        self.config
            .quiesce_duration_scaled(self.latency_scale)
            .max(SimDuration::from_millis(100))
    }

    fn session_metrics(&self, session: &Session) -> ClientMetrics {
        // An unreachable node yields empty metrics rather than a panic:
        // callers that must distinguish a dead thread from an idle one
        // use `try_session_metrics`, whose error says which it was.
        self.try_session_metrics(session).unwrap_or_default()
    }

    fn aggregate_metrics(&self) -> ClientMetrics {
        // Merge what answered: one wedged client thread should not take
        // down end-of-run reporting for the whole deployment (its final
        // counters are still recovered at `shutdown()`, which joins the
        // thread instead of asking it).
        let mut total = ClientMetrics::default();
        for idx in 0..self.ports.len() {
            match self.roundtrip(idx, ClientCmd::Metrics) {
                Ok(ClientReply::Metrics(m)) => total.merge(&m),
                Ok(other) => panic!("protocol mismatch: expected Metrics, got {other:?}"),
                Err(_) => continue,
            }
        }
        total
    }

    fn take_records(&mut self) -> Vec<TxnRecord> {
        // Same merge-what-answered policy as `aggregate_metrics`: an
        // unreachable thread keeps its records until `shutdown()`.
        let mut all = Vec::new();
        for idx in 0..self.ports.len() {
            match self.roundtrip(idx, ClientCmd::TakeRecords) {
                Ok(ClientReply::Records(r)) => all.extend(r),
                Ok(other) => panic!("protocol mismatch: expected Records, got {other:?}"),
                Err(_) => continue,
            }
        }
        all.sort_by_key(|r| (r.session, r.session_seq));
        all
    }
}

/// Precomputes mean one-way delays between all node pairs.
fn build_delays(topology: &Topology, scale: f64) -> Vec<Vec<u64>> {
    let model = LatencyModel::default();
    let n = topology.len();
    let mut d = vec![vec![0u64; n]; n];
    for (i, a) in topology.iter() {
        for (j, b) in topology.iter() {
            if i == j {
                continue;
            }
            let class = LatencyModel::classify(a, b);
            let one_way_ms = model.mean_rtt_ms(class) / 2.0 * scale;
            d[i as usize][j as usize] = (one_way_ms * 1000.0) as u64;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use hat_core::client::TxnSource;
    use hat_core::{ClusterSpec, ProtocolKind, SessionLevel};
    use hat_workloads_shim::*;

    /// Minimal local YCSB-ish source to avoid a cyclic dev-dependency on
    /// hat-workloads.
    mod hat_workloads_shim {
        use hat_core::{Op, TxnSpec};

        #[derive(Debug)]
        pub struct MiniSource {
            pub n: u64,
        }
        impl hat_core::client::TxnSource for MiniSource {
            fn next_txn(&mut self, rng: &mut rand::rngs::StdRng) -> Option<TxnSpec> {
                use rand::Rng;
                if self.n == 0 {
                    return None;
                }
                self.n -= 1;
                let k = format!("key{}", rng.gen_range(0..20));
                Some(TxnSpec::new(vec![
                    Op::Read(k.clone().into_bytes().into()),
                    Op::Write(k.into_bytes().into(), bytes::Bytes::from_static(b"v")),
                ]))
            }
        }
    }

    fn drivers(count: usize, txns: u64) -> Vec<Box<dyn TxnSource>> {
        (0..count)
            .map(|_| Box::new(MiniSource { n: txns }) as Box<dyn TxnSource>)
            .collect()
    }

    #[test]
    fn threaded_eventual_commits_transactions() {
        let builder = DeploymentBuilder::new(ProtocolKind::Eventual)
            .seed(1)
            .clusters(ClusterSpec::single_dc(2, 2))
            .drivers(drivers(4, 25));
        let rt = Runtime::spawn(builder, RuntimeConfig::default());
        rt.run_for(Duration::from_millis(400));
        let (_nodes, metrics, records) = rt.shutdown();
        assert!(
            metrics.committed >= 50,
            "expected most of 100 txns committed, got {}",
            metrics.committed
        );
        assert_eq!(records.len() as u64, metrics.committed);
    }

    #[test]
    fn threaded_mav_is_history_clean() {
        let builder = DeploymentBuilder::new(ProtocolKind::Mav)
            .seed(2)
            .clusters(ClusterSpec::single_dc(2, 2))
            .default_session(SessionOptions {
                level: SessionLevel::Monotonic,
                sticky: true,
            })
            .drivers(drivers(3, 20));
        let rt = Runtime::spawn(builder, RuntimeConfig::default());
        rt.run_for(Duration::from_millis(400));
        let (nodes, metrics, _records) = rt.shutdown();
        assert!(metrics.committed > 0);
        // the MAV required-bound invariant holds under real races too
        let misses: u64 = nodes
            .iter()
            .filter_map(|n| n.as_server())
            .map(|s| s.mav_required_misses())
            .sum();
        assert_eq!(misses, 0);
    }

    #[test]
    fn threaded_master_serves_all_clients() {
        let builder = DeploymentBuilder::new(ProtocolKind::Master)
            .seed(3)
            .clusters(ClusterSpec::single_dc(2, 2))
            .drivers(drivers(2, 10));
        let rt = Runtime::spawn(builder, RuntimeConfig::default());
        rt.run_for(Duration::from_millis(300));
        let (_, metrics, _) = rt.shutdown();
        assert_eq!(metrics.committed, 20, "all txns should finish");
    }

    #[test]
    fn interactive_frontend_runs_transactions() {
        let mut front = DeploymentBuilder::new(ProtocolKind::ReadCommitted)
            .seed(4)
            .clusters(ClusterSpec::single_dc(2, 2))
            .sessions_per_cluster(1)
            .build_threaded(RuntimeConfig::default());
        let a = front.open_session(SessionOptions::default());
        let b = front.open_session(SessionOptions {
            level: SessionLevel::Monotonic,
            sticky: true,
        });
        front.txn(&a, |t| t.put("greeting", "from thread a"));
        front.quiesce();
        let v = front.txn(&b, |t| t.get("greeting"));
        assert_eq!(v.as_deref(), Some("from thread a"));
        let (_, metrics, records) = front.shutdown();
        assert_eq!(metrics.committed, 2);
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn interactive_scan_and_metrics() {
        let mut front = DeploymentBuilder::new(ProtocolKind::Eventual)
            .seed(5)
            .clusters(ClusterSpec::single_dc(2, 2))
            .sessions_per_cluster(1)
            .build_threaded(RuntimeConfig::default());
        let s = front.open_session(SessionOptions::default());
        front.txn(&s, |t| {
            t.put("user:1", "alice")?;
            t.put("user:2", "bob")
        });
        front.quiesce();
        let users = front.txn(&s, |t| t.scan("user:"));
        assert_eq!(users.len(), 2);
        assert_eq!(front.session_metrics(&s).committed, 2);
        let records = front.take_records();
        assert_eq!(records.len(), 2);
    }
}
