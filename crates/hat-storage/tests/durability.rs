//! Crash-recovery integration tests for the durable store.

use bytes::Bytes;
use hat_storage::{DurableStore, Key, Record, Store, SyncPolicy, VersionStamp, Wal, WalEntry};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "hat-durability-{tag}-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn rec(seq: u64, val: &str) -> Record {
    Record::new(VersionStamp::new(seq, 1), Bytes::from(val.to_owned()))
}

/// The full lifecycle: write → checkpoint → write more → "crash" →
/// recover → everything visible, including multi-version state.
#[test]
fn checkpoint_plus_wal_recovery_preserves_versions() {
    let dir = tmpdir("lifecycle");
    {
        let mut s = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
        for i in 1..=50u64 {
            s.put(
                Key::from(format!("k{}", i % 10)),
                rec(i, &format!("v{i}")).into(),
            )
            .unwrap();
        }
        s.checkpoint().unwrap();
        for i in 51..=80u64 {
            s.put(
                Key::from(format!("k{}", i % 10)),
                rec(i, &format!("v{i}")).into(),
            )
            .unwrap();
        }
        // no clean shutdown: the store is simply dropped
    }
    let s = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
    assert_eq!(s.key_count(), 10);
    assert_eq!(s.version_count(), 80);
    // latest version of k0 is i=80
    assert_eq!(s.latest(b"k0").unwrap().value, Bytes::from("v80"));
    // snapshot reads reach back across the checkpoint boundary
    let old = s
        .latest_at_or_below(b"k0", VersionStamp::new(40, 9))
        .unwrap();
    assert_eq!(old.value, Bytes::from("v40"));
    std::fs::remove_dir_all(dir).unwrap();
}

/// A crash that tears the WAL tail mid-record loses only the torn
/// suffix; everything before it recovers.
#[test]
fn torn_wal_tail_after_checkpoint_recovers_prefix() {
    let dir = tmpdir("torn");
    {
        let mut s = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
        for i in 1..=20u64 {
            s.put(Key::from("x"), rec(i, &format!("v{i}")).into())
                .unwrap();
        }
    }
    // tear the last few bytes off the WAL
    let wal_path = dir.join("wal");
    let data = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &data[..data.len() - 5]).unwrap();
    let s = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
    let latest = s.latest(b"x").unwrap();
    assert_eq!(latest.value, Bytes::from("v19"), "only the torn write lost");
    assert_eq!(s.version_count(), 19);
    std::fs::remove_dir_all(dir).unwrap();
}

/// A crash between writing checkpoint.tmp and the rename leaves the old
/// state fully recoverable (the tmp file is ignored).
#[test]
fn interrupted_checkpoint_is_invisible() {
    let dir = tmpdir("ckpt");
    {
        let mut s = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
        s.put(Key::from("a"), rec(1, "one").into()).unwrap();
    }
    // simulate the crash: a stray checkpoint.tmp with arbitrary content
    {
        let mut fake = Wal::open(dir.join("checkpoint.tmp")).unwrap();
        fake.append(&WalEntry::Put {
            key: Key::from("zz"),
            record: rec(99, "should-not-appear"),
        })
        .unwrap();
        fake.sync().unwrap();
    }
    let s = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
    assert!(s.latest(b"zz").is_none(), "tmp checkpoint must be ignored");
    assert_eq!(s.latest(b"a").unwrap().value, Bytes::from("one"));
    std::fs::remove_dir_all(dir).unwrap();
}

/// Repeated open/close cycles with interleaved checkpoints never lose or
/// duplicate versions.
#[test]
fn repeated_restart_cycles_are_stable() {
    let dir = tmpdir("cycles");
    let mut expect = 0u64;
    for cycle in 0..5u64 {
        let mut s = DurableStore::open(&dir, SyncPolicy::EveryN(4)).unwrap();
        assert_eq!(s.version_count() as u64, expect, "cycle {cycle}");
        for i in 0..7u64 {
            let seq = cycle * 7 + i + 1;
            s.put(Key::from(format!("k{}", seq % 3)), rec(seq, "v").into())
                .unwrap();
        }
        expect += 7;
        if cycle % 2 == 1 {
            s.checkpoint().unwrap();
        }
        s.sync().unwrap();
    }
    let s = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
    assert_eq!(s.version_count() as u64, expect);
    std::fs::remove_dir_all(dir).unwrap();
}

/// GC after recovery still respects snapshot bounds.
#[test]
fn gc_after_recovery() {
    let dir = tmpdir("gc");
    {
        let mut s = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
        for i in 1..=10u64 {
            s.put(Key::from("x"), rec(i, &format!("v{i}")).into())
                .unwrap();
        }
    }
    let mut s = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
    // writers are client 1, so (8, 5) dominates version (8, 1)
    let bound = VersionStamp::new(8, 5);
    let dropped = s.gc_below(bound);
    assert_eq!(
        dropped, 7,
        "versions 1..=7 dominated by 8 (visible at bound)"
    );
    assert_eq!(
        s.latest_at_or_below(b"x", bound).unwrap().value,
        Bytes::from("v8")
    );
    std::fs::remove_dir_all(dir).unwrap();
}
