//! Multi-versioned key-value storage substrate for HAT replicas.
//!
//! The paper's prototype backs each replica with LevelDB and a write-ahead
//! log: "Servers are durable: they synchronously write to LevelDB before
//! responding to client requests, while new writes in MAV are synchronously
//! flushed to a disk-resident write-ahead log" (§6.3). This crate is the
//! equivalent substrate, built from scratch:
//!
//! * [`version`] — totally-ordered version stamps (`(sequence, writer)`
//!   pairs — the paper's "client ID + sequence number" timestamps) and
//!   versioned records.
//! * [`memtable`] — an ordered, multi-versioned in-memory table with
//!   last-writer-wins visibility, snapshot (`≤ stamp`) reads, prefix scans
//!   for predicate reads, and version garbage collection.
//! * [`wal`] — a checksummed, length-prefixed append-only write-ahead log
//!   with crash recovery (torn tails are detected and discarded).
//! * [`store`] — the [`store::Store`] trait plus [`store::MemStore`]
//!   (volatile) and [`store::DurableStore`] (WAL-backed) implementations.
//!
//! The store is deliberately replica-local: replication, visibility rules
//! (e.g. MAV's pending/good sets) and conflict policy all live in
//! `hat-core`'s protocol layer. The storage layer guarantees only the
//! per-item total version order that Read Uncommitted requires (§5.1.1).

pub mod error;
pub mod memtable;
pub mod store;
pub mod version;
pub mod wal;

pub use error::StorageError;
pub use memtable::Memtable;
pub use store::{DurableStore, MemStore, Store, SyncPolicy};
pub use version::{Key, Record, SharedRecord, VersionStamp};
pub use wal::{Wal, WalEntry};
