//! Storage error type.

use std::fmt;
use std::io;

/// Errors surfaced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O failure (WAL append, fsync, recovery read...).
    Io(io::Error),
    /// A WAL record failed its checksum and was not at the tail of the
    /// log, i.e. corruption rather than a torn write.
    Corrupt {
        /// Byte offset of the corrupt record.
        offset: u64,
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt { offset, reason } => {
                write!(f, "corrupt WAL record at offset {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience alias for storage results.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_io() {
        let e = StorageError::from(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn display_corrupt() {
        let e = StorageError::Corrupt {
            offset: 42,
            reason: "bad crc".into(),
        };
        assert!(e.to_string().contains("42"));
        assert!(e.to_string().contains("bad crc"));
    }
}
