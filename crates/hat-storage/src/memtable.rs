//! Ordered, multi-versioned in-memory table.
//!
//! Each key maps to its committed versions sorted by [`VersionStamp`].
//! Visibility questions the protocols need are answered here:
//!
//! * `latest` — last-writer-wins read (Read Uncommitted / eventual).
//! * `latest_at_or_below` — snapshot read at a stamp bound (used by the
//!   MAV `good` lookup and by cut-isolation reads on sticky replicas).
//! * `exact` — read a specific version (MAV `pending` promotion).
//! * `scan_prefix` — predicate reads over a logical key range (P-CI,
//!   TPC-C secondary lookups).
//! * `gc_below` — discard versions strictly dominated by a stamp, keeping
//!   the newest at-or-below version per key (the paper's "older versions
//!   can be asynchronously garbage collected", §5.1.2).

use crate::version::{Key, SharedRecord, VersionStamp};
use std::collections::BTreeMap;

/// Multi-versioned ordered table. Not synchronized; callers wrap it in a
/// lock if shared (the simulator is single-threaded, the runtime wraps
/// stores in `parking_lot` mutexes).
///
/// Version chains hold [`SharedRecord`] handles, so a record installed
/// here and later read back is never deep-copied — readers get a
/// refcount bump on the allocation made at write time.
#[derive(Debug, Clone, Default)]
pub struct Memtable {
    map: BTreeMap<Key, Vec<SharedRecord>>,
    versions: usize,
    /// Per-key version-chain bound (`None` = unbounded). Multi-version
    /// readers (RAMP `get_at`, snapshot reads) only ever reach back a
    /// bounded distance, so retaining every version forever is pure
    /// memory leak; the cap drops the oldest versions of a chain once it
    /// grows past the bound, always keeping the newest `cap`.
    cap: Option<usize>,
}

impl Memtable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty table whose per-key version chains are bounded at `cap`
    /// (the newest `cap` versions are retained).
    pub fn with_version_cap(cap: usize) -> Self {
        Memtable {
            cap: Some(cap.max(1)),
            ..Self::default()
        }
    }

    /// Inserts a version. A duplicate stamp for the same key *replaces*
    /// the stored value and returns `false`: replacement keeps redelivery
    /// idempotent while letting a transaction's later write of the same
    /// key supersede its intermediate write (both carry the transaction's
    /// timestamp; the final one must win).
    pub fn insert(&mut self, key: Key, record: impl Into<SharedRecord>) -> bool {
        let record = record.into();
        let cap = self.cap;
        let versions = self.map.entry(key).or_default();
        let fresh = match versions.binary_search_by(|r| r.stamp.cmp(&record.stamp)) {
            Ok(pos) => {
                versions[pos] = record;
                false
            }
            Err(pos) => {
                versions.insert(pos, record);
                self.versions += 1;
                true
            }
        };
        if let Some(cap) = cap {
            if versions.len() > cap {
                let drop = versions.len() - cap;
                versions.drain(..drop);
                self.versions -= drop;
            }
        }
        fresh
    }

    /// The latest version of `key` (last-writer-wins winner), if any.
    pub fn latest(&self, key: &[u8]) -> Option<&SharedRecord> {
        self.map.get(key).and_then(|v| v.last())
    }

    /// The newest version of `key` with stamp `≤ bound`, if any.
    pub fn latest_at_or_below(&self, key: &[u8], bound: VersionStamp) -> Option<&SharedRecord> {
        let versions = self.map.get(key)?;
        let idx = versions.partition_point(|r| r.stamp <= bound);
        idx.checked_sub(1).map(|i| &versions[i])
    }

    /// The newest version of `key` with stamp `≥ bound`, if any (MAV's
    /// "pending stable write with a higher timestamp" lookup).
    pub fn latest_at_or_above(&self, key: &[u8], bound: VersionStamp) -> Option<&SharedRecord> {
        let versions = self.map.get(key)?;
        versions.last().filter(|r| r.stamp >= bound)
    }

    /// The version of `key` with exactly stamp `stamp`, if present.
    pub fn exact(&self, key: &[u8], stamp: VersionStamp) -> Option<&SharedRecord> {
        let versions = self.map.get(key)?;
        versions
            .binary_search_by(|r| r.stamp.cmp(&stamp))
            .ok()
            .map(|i| &versions[i])
    }

    /// Removes the version of `key` stamped `stamp`, returning it.
    pub fn remove(&mut self, key: &[u8], stamp: VersionStamp) -> Option<SharedRecord> {
        let versions = self.map.get_mut(key)?;
        let idx = versions.binary_search_by(|r| r.stamp.cmp(&stamp)).ok()?;
        let rec = versions.remove(idx);
        self.versions -= 1;
        if versions.is_empty() {
            self.map.remove(key);
        }
        Some(rec)
    }

    /// All versions of `key`, oldest first.
    pub fn versions(&self, key: &[u8]) -> &[SharedRecord] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Latest version of every key whose bytes start with `prefix`,
    /// in key order. This is the predicate-read primitive: a `SELECT
    /// WHERE key LIKE 'prefix%'` over last-writer-wins state.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Key, &SharedRecord)> {
        self.range_scan(prefix, |k| k.starts_with(prefix))
    }

    /// Latest version of every key whose bytes start with `prefix`, with
    /// visibility bounded at `bound` (`≤ bound` snapshot semantics).
    pub fn scan_prefix_at_or_below(
        &self,
        prefix: &[u8],
        bound: VersionStamp,
    ) -> Vec<(Key, &SharedRecord)> {
        let mut out = Vec::new();
        for (k, versions) in self.map.range(Key::copy_from_slice(prefix)..) {
            if !k.starts_with(prefix) {
                break;
            }
            let idx = versions.partition_point(|r| r.stamp <= bound);
            if let Some(i) = idx.checked_sub(1) {
                out.push((k.clone(), &versions[i]));
            }
        }
        out
    }

    fn range_scan(&self, start: &[u8], keep: impl Fn(&[u8]) -> bool) -> Vec<(Key, &SharedRecord)> {
        let mut out = Vec::new();
        for (k, versions) in self.map.range(Key::copy_from_slice(start)..) {
            if !keep(k) {
                break;
            }
            if let Some(last) = versions.last() {
                out.push((k.clone(), last));
            }
        }
        out
    }

    /// Garbage-collects versions strictly below `bound`, always retaining
    /// the newest version at-or-below `bound` of each key (so snapshot
    /// reads at `bound` still succeed). Returns the number of versions
    /// dropped.
    pub fn gc_below(&mut self, bound: VersionStamp) -> usize {
        let mut dropped = 0;
        for versions in self.map.values_mut() {
            let visible_idx = versions.partition_point(|r| r.stamp <= bound);
            if let Some(keep_from) = visible_idx.checked_sub(1) {
                dropped += keep_from;
                versions.drain(..keep_from);
            }
        }
        self.versions -= dropped;
        dropped
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Total number of stored versions.
    pub fn version_count(&self) -> usize {
        self.versions
    }

    /// True if the table holds no versions.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(key, versions)` in key order (used by checkpointing and
    /// anti-entropy).
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &[SharedRecord])> {
        self.map.iter().map(|(k, v)| (k, v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::Record;
    use bytes::Bytes;

    fn rec(seq: u64, writer: u32, val: &str) -> Record {
        Record::new(VersionStamp::new(seq, writer), Bytes::from(val.to_owned()))
    }

    fn k(s: &str) -> Key {
        Key::from(s.to_owned())
    }

    #[test]
    fn lww_latest_wins_regardless_of_arrival_order() {
        let mut m = Memtable::new();
        m.insert(k("x"), rec(5, 1, "late"));
        m.insert(k("x"), rec(3, 1, "early"));
        assert_eq!(m.latest(b"x").unwrap().value, Bytes::from("late"));
        assert_eq!(m.versions(b"x").len(), 2);
        assert_eq!(m.versions(b"x")[0].stamp.seq, 3, "sorted ascending");
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut m = Memtable::new();
        assert!(m.insert(k("x"), rec(1, 1, "a")));
        assert!(!m.insert(k("x"), rec(1, 1, "a")));
        assert_eq!(m.version_count(), 1);
    }

    #[test]
    fn snapshot_reads_at_bound() {
        let mut m = Memtable::new();
        m.insert(k("x"), rec(1, 0, "v1"));
        m.insert(k("x"), rec(5, 0, "v5"));
        m.insert(k("x"), rec(9, 0, "v9"));
        let at = |s| m.latest_at_or_below(b"x", VersionStamp::new(s, 9));
        assert_eq!(at(0), None, "nothing at or below 0@c9? stamp (0,9) < (1,0)");
        assert_eq!(at(1).unwrap().value, Bytes::from("v1"));
        assert_eq!(at(7).unwrap().value, Bytes::from("v5"));
        assert_eq!(at(100).unwrap().value, Bytes::from("v9"));
    }

    #[test]
    fn at_or_above_returns_newest_only_if_high_enough() {
        let mut m = Memtable::new();
        m.insert(k("x"), rec(5, 0, "v5"));
        assert!(m
            .latest_at_or_above(b"x", VersionStamp::new(5, 0))
            .is_some());
        assert!(m
            .latest_at_or_above(b"x", VersionStamp::new(6, 0))
            .is_none());
    }

    #[test]
    fn exact_and_remove() {
        let mut m = Memtable::new();
        m.insert(k("x"), rec(1, 0, "a"));
        m.insert(k("x"), rec(2, 0, "b"));
        assert_eq!(
            m.exact(b"x", VersionStamp::new(1, 0)).unwrap().value,
            Bytes::from("a")
        );
        assert!(m.exact(b"x", VersionStamp::new(3, 0)).is_none());
        let removed = m.remove(b"x", VersionStamp::new(1, 0)).unwrap();
        assert_eq!(removed.value, Bytes::from("a"));
        assert_eq!(m.version_count(), 1);
        m.remove(b"x", VersionStamp::new(2, 0));
        assert!(m.is_empty(), "empty key vectors are pruned");
    }

    #[test]
    fn prefix_scan_returns_latest_per_key_in_order() {
        let mut m = Memtable::new();
        m.insert(k("order/1"), rec(1, 0, "o1"));
        m.insert(k("order/1"), rec(4, 0, "o1v2"));
        m.insert(k("order/2"), rec(2, 0, "o2"));
        m.insert(k("other"), rec(3, 0, "x"));
        let hits = m.scan_prefix(b"order/");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, k("order/1"));
        assert_eq!(hits[0].1.value, Bytes::from("o1v2"));
        assert_eq!(hits[1].0, k("order/2"));
    }

    #[test]
    fn prefix_scan_snapshot_bounds_visibility() {
        let mut m = Memtable::new();
        m.insert(k("a/1"), rec(1, 0, "old"));
        m.insert(k("a/1"), rec(10, 0, "new"));
        m.insert(k("a/2"), rec(20, 0, "only-new"));
        let hits = m.scan_prefix_at_or_below(b"a/", VersionStamp::new(5, 0));
        assert_eq!(hits.len(), 1, "a/2 has no version at or below the bound");
        assert_eq!(hits[0].1.value, Bytes::from("old"));
    }

    #[test]
    fn gc_keeps_visible_version_at_bound() {
        let mut m = Memtable::new();
        for s in [1u64, 3, 5, 7] {
            m.insert(k("x"), rec(s, 0, &format!("v{s}")));
        }
        let dropped = m.gc_below(VersionStamp::new(5, 9));
        // versions 1 and 3 dominated by 5; 5 retained (visible at bound), 7 retained
        assert_eq!(dropped, 2);
        assert_eq!(m.versions(b"x").len(), 2);
        assert_eq!(
            m.latest_at_or_below(b"x", VersionStamp::new(5, 9))
                .unwrap()
                .value,
            Bytes::from("v5")
        );
    }

    #[test]
    fn gc_on_key_with_no_visible_version_is_noop() {
        let mut m = Memtable::new();
        m.insert(k("x"), rec(10, 0, "future"));
        assert_eq!(m.gc_below(VersionStamp::new(5, 0)), 0);
        assert_eq!(m.versions(b"x").len(), 1);
    }

    #[test]
    fn version_cap_bounds_the_chain_keeping_newest() {
        let mut m = Memtable::with_version_cap(3);
        for s in 1..=10u64 {
            m.insert(k("x"), rec(s, 0, &format!("v{s}")));
        }
        assert_eq!(m.versions(b"x").len(), 3);
        assert_eq!(m.version_count(), 3);
        // the newest three survive; by-timestamp reads within the bound
        // still work
        assert_eq!(
            m.exact(b"x", VersionStamp::new(8, 0)).unwrap().value,
            Bytes::from("v8")
        );
        assert!(m.exact(b"x", VersionStamp::new(7, 0)).is_none());
        assert_eq!(m.latest(b"x").unwrap().stamp.seq, 10);
        // re-inserting an evicted stamp is treated as a fresh version and
        // immediately evicted again from the low end
        m.insert(k("x"), rec(1, 0, "old"));
        assert_eq!(m.versions(b"x").len(), 3);
        assert_eq!(m.versions(b"x")[0].stamp.seq, 8);
    }

    #[test]
    fn counts_track_inserts() {
        let mut m = Memtable::new();
        m.insert(k("a"), rec(1, 0, "1"));
        m.insert(k("a"), rec(2, 0, "2"));
        m.insert(k("b"), rec(1, 0, "1"));
        assert_eq!(m.key_count(), 2);
        assert_eq!(m.version_count(), 3);
    }
}
