//! The replica-local store: a trait plus volatile and durable engines.
//!
//! [`MemStore`] corresponds to the paper's "in-memory persistence" runs
//! (§6.3: "With in-memory persistence (i.e., no LevelDB or WAL), MAV
//! throughput was within 20% of eventual"); [`DurableStore`] corresponds
//! to the default durable configuration where every write is logged before
//! the server responds.

use crate::error::Result;
use crate::memtable::Memtable;
use crate::version::{Key, SharedRecord, VersionStamp};
use crate::wal::{Wal, WalEntry};
use std::path::{Path, PathBuf};

/// How often the durable store forces the WAL to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every put — the paper's durable configuration.
    Always,
    /// `fsync` every `n` puts (group commit).
    EveryN(u32),
    /// Never `fsync` explicitly (OS decides); fastest, weakest.
    Never,
}

/// Replica-local multi-version storage.
///
/// Reads return [`SharedRecord`] handles to the allocation made at write
/// time: cloning one out of the table is a refcount bump, not a deep copy
/// of value bytes and sibling lists. Callers are protocol state machines
/// that thread the handle straight into messages and caches, so the
/// record's single allocation is shared across the whole hot path while
/// the trait stays object-safe.
pub trait Store {
    /// Installs a version. Returns `true` if newly installed, `false` if
    /// the (key, stamp) pair was already present (idempotent redelivery).
    fn put(&mut self, key: Key, record: SharedRecord) -> Result<bool>;

    /// Last-writer-wins read.
    fn latest(&self, key: &[u8]) -> Option<SharedRecord>;

    /// Newest version at or below `bound` (snapshot read).
    fn latest_at_or_below(&self, key: &[u8], bound: VersionStamp) -> Option<SharedRecord>;

    /// Newest version, provided its stamp is at or above `bound`.
    fn latest_at_or_above(&self, key: &[u8], bound: VersionStamp) -> Option<SharedRecord>;

    /// The version stamped exactly `stamp`.
    fn exact(&self, key: &[u8], stamp: VersionStamp) -> Option<SharedRecord>;

    /// Read a *specific* version by timestamp — the RAMP second-round
    /// fetch (readers repair fractured reads by asking for the exact
    /// sibling version named in another record's metadata). Alias of
    /// [`Store::exact`] with a reader-facing name; engines that keep
    /// auxiliary version sets (pending/prepared) layer those on top.
    fn get_at(&self, key: &[u8], stamp: VersionStamp) -> Option<SharedRecord> {
        self.exact(key, stamp)
    }

    /// Latest version per key under `prefix` (predicate read).
    fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Key, SharedRecord)>;

    /// Snapshot predicate read bounded at `bound`.
    fn scan_prefix_at_or_below(
        &self,
        prefix: &[u8],
        bound: VersionStamp,
    ) -> Vec<(Key, SharedRecord)>;

    /// Garbage-collects versions dominated below `bound`; returns count
    /// dropped.
    fn gc_below(&mut self, bound: VersionStamp) -> usize;

    /// Number of distinct keys.
    fn key_count(&self) -> usize;

    /// Number of stored versions.
    fn version_count(&self) -> usize;

    /// Forces buffered writes to stable storage (no-op for volatile
    /// stores).
    fn sync(&mut self) -> Result<()>;

    /// Every stored version of every key, in key order. Used to reseed
    /// a restarted server's replication buffer from recovered state —
    /// whole version chains, not just per-key latest, so multi-key
    /// transactions re-gossip intact.
    fn all_versions(&self) -> Vec<(Key, SharedRecord)>;

    /// How many records recovery replayed into this store when it was
    /// opened (0 for volatile stores, which never recover anything).
    fn recovered_records(&self) -> u64 {
        0
    }

    /// Bytes currently in the write-ahead log backing this store (0 for
    /// volatile stores). Observers diff this across writes to attribute
    /// WAL append traffic without the store knowing about tracing.
    fn wal_bytes(&self) -> u64 {
        0
    }
}

/// Purely in-memory store.
#[derive(Debug, Default, Clone)]
pub struct MemStore {
    table: Memtable,
}

impl MemStore {
    /// An empty volatile store.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty volatile store whose per-key version chains are bounded
    /// at `cap` newest versions (see [`Memtable::with_version_cap`]).
    pub fn with_version_cap(cap: usize) -> Self {
        MemStore {
            table: Memtable::with_version_cap(cap),
        }
    }
}

impl Store for MemStore {
    fn put(&mut self, key: Key, record: SharedRecord) -> Result<bool> {
        Ok(self.table.insert(key, record))
    }
    fn latest(&self, key: &[u8]) -> Option<SharedRecord> {
        self.table.latest(key).cloned()
    }
    fn latest_at_or_below(&self, key: &[u8], bound: VersionStamp) -> Option<SharedRecord> {
        self.table.latest_at_or_below(key, bound).cloned()
    }
    fn latest_at_or_above(&self, key: &[u8], bound: VersionStamp) -> Option<SharedRecord> {
        self.table.latest_at_or_above(key, bound).cloned()
    }
    fn exact(&self, key: &[u8], stamp: VersionStamp) -> Option<SharedRecord> {
        self.table.exact(key, stamp).cloned()
    }
    fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Key, SharedRecord)> {
        self.table
            .scan_prefix(prefix)
            .into_iter()
            .map(|(k, r)| (k, r.clone()))
            .collect()
    }
    fn scan_prefix_at_or_below(
        &self,
        prefix: &[u8],
        bound: VersionStamp,
    ) -> Vec<(Key, SharedRecord)> {
        self.table
            .scan_prefix_at_or_below(prefix, bound)
            .into_iter()
            .map(|(k, r)| (k, r.clone()))
            .collect()
    }
    fn gc_below(&mut self, bound: VersionStamp) -> usize {
        self.table.gc_below(bound)
    }
    fn key_count(&self) -> usize {
        self.table.key_count()
    }
    fn version_count(&self) -> usize {
        self.table.version_count()
    }
    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
    fn all_versions(&self) -> Vec<(Key, SharedRecord)> {
        dump_versions(&self.table)
    }
}

/// Key-ordered dump of every version chain (shared handles, no copies).
fn dump_versions(table: &Memtable) -> Vec<(Key, SharedRecord)> {
    table
        .iter()
        .flat_map(|(k, versions)| versions.iter().map(move |r| (k.clone(), r.clone())))
        .collect()
}

/// WAL-backed durable store with checkpoint compaction.
///
/// Layout inside the directory: `wal` (the active log) and `checkpoint`
/// (a compacted log of all versions as of the last [`DurableStore::checkpoint`]
/// call). Recovery replays `checkpoint` then `wal`.
pub struct DurableStore {
    dir: PathBuf,
    table: Memtable,
    wal: Wal,
    policy: SyncPolicy,
    puts_since_sync: u32,
    recovered: u64,
}

impl DurableStore {
    /// Opens (or creates) a durable store in `dir`, replaying any existing
    /// checkpoint and WAL.
    pub fn open(dir: impl AsRef<Path>, policy: SyncPolicy) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut table = Memtable::new();
        let mut recovered = 0u64;
        // A crash mid-append leaves a torn final frame; cut it before
        // appending again, or new frames would land after the damage and
        // be unreachable to the next replay.
        Wal::truncate_torn_tail(dir.join("wal"))?;
        for source in [dir.join("checkpoint"), dir.join("wal")] {
            for entry in Wal::replay(&source)? {
                if let WalEntry::Put { key, record } = entry {
                    table.insert(key, record);
                    recovered += 1;
                }
            }
        }
        let wal = Wal::open(dir.join("wal"))?;
        Ok(DurableStore {
            dir,
            table,
            wal,
            policy,
            puts_since_sync: 0,
            recovered,
        })
    }

    /// Path of the active WAL file inside a store directory — the file a
    /// torn-tail fault injector truncates between crash and recovery.
    pub fn wal_path(dir: impl AsRef<Path>) -> PathBuf {
        dir.as_ref().join("wal")
    }

    /// Writes a checkpoint of the entire table and truncates the WAL.
    ///
    /// The checkpoint is written to a temporary file and atomically
    /// renamed, so a crash mid-checkpoint leaves the previous
    /// checkpoint + WAL intact.
    pub fn checkpoint(&mut self) -> Result<()> {
        let tmp = self.dir.join("checkpoint.tmp");
        let _ = std::fs::remove_file(&tmp);
        {
            let mut ckpt = Wal::open(&tmp)?;
            for (key, versions) in self.table.iter() {
                for record in versions {
                    ckpt.append(&WalEntry::Put {
                        key: key.clone(),
                        record: record.as_ref().clone(),
                    })?;
                }
            }
            ckpt.sync()?;
        }
        std::fs::rename(&tmp, self.dir.join("checkpoint"))?;
        self.wal.reset()?;
        Ok(())
    }

    /// Bytes currently in the active WAL.
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn maybe_sync(&mut self) -> Result<()> {
        match self.policy {
            SyncPolicy::Always => self.wal.sync(),
            SyncPolicy::EveryN(n) => {
                self.puts_since_sync += 1;
                if self.puts_since_sync >= n {
                    self.puts_since_sync = 0;
                    self.wal.sync()
                } else {
                    Ok(())
                }
            }
            SyncPolicy::Never => Ok(()),
        }
    }
}

impl Store for DurableStore {
    fn put(&mut self, key: Key, record: SharedRecord) -> Result<bool> {
        // Log before applying: a version is never visible unless the WAL
        // can reproduce it. The WAL entry is the one remaining deep copy
        // on the write path — a serialization boundary, not a hot-path
        // clone.
        self.wal.append(&WalEntry::Put {
            key: key.clone(),
            record: record.as_ref().clone(),
        })?;
        self.maybe_sync()?;
        Ok(self.table.insert(key, record))
    }
    fn latest(&self, key: &[u8]) -> Option<SharedRecord> {
        self.table.latest(key).cloned()
    }
    fn latest_at_or_below(&self, key: &[u8], bound: VersionStamp) -> Option<SharedRecord> {
        self.table.latest_at_or_below(key, bound).cloned()
    }
    fn latest_at_or_above(&self, key: &[u8], bound: VersionStamp) -> Option<SharedRecord> {
        self.table.latest_at_or_above(key, bound).cloned()
    }
    fn exact(&self, key: &[u8], stamp: VersionStamp) -> Option<SharedRecord> {
        self.table.exact(key, stamp).cloned()
    }
    fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Key, SharedRecord)> {
        self.table
            .scan_prefix(prefix)
            .into_iter()
            .map(|(k, r)| (k, r.clone()))
            .collect()
    }
    fn scan_prefix_at_or_below(
        &self,
        prefix: &[u8],
        bound: VersionStamp,
    ) -> Vec<(Key, SharedRecord)> {
        self.table
            .scan_prefix_at_or_below(prefix, bound)
            .into_iter()
            .map(|(k, r)| (k, r.clone()))
            .collect()
    }
    fn gc_below(&mut self, bound: VersionStamp) -> usize {
        self.table.gc_below(bound)
    }
    fn key_count(&self) -> usize {
        self.table.key_count()
    }
    fn version_count(&self) -> usize {
        self.table.version_count()
    }
    fn sync(&mut self) -> Result<()> {
        self.wal.sync()
    }
    fn all_versions(&self) -> Vec<(Key, SharedRecord)> {
        dump_versions(&self.table)
    }
    fn recovered_records(&self) -> u64 {
        self.recovered
    }
    fn wal_bytes(&self) -> u64 {
        self.wal.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::version::Record;
    use bytes::Bytes;

    fn tmpdir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "hat-store-test-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn rec(seq: u64, val: &str) -> SharedRecord {
        Record::new(VersionStamp::new(seq, 1), Bytes::from(val.to_owned())).into()
    }

    #[test]
    fn memstore_basic_ops() {
        let mut s = MemStore::new();
        assert!(s.put(Key::from("x"), rec(1, "a")).unwrap());
        assert!(!s.put(Key::from("x"), rec(1, "a")).unwrap());
        s.put(Key::from("x"), rec(5, "b")).unwrap();
        assert_eq!(s.latest(b"x").unwrap().value, Bytes::from("b"));
        assert_eq!(
            s.latest_at_or_below(b"x", VersionStamp::new(2, 0))
                .unwrap()
                .value,
            Bytes::from("a")
        );
        assert_eq!(s.key_count(), 1);
        assert_eq!(s.version_count(), 2);
        assert_eq!(s.gc_below(VersionStamp::new(5, 9)), 1);
        s.sync().unwrap();
    }

    #[test]
    fn durable_store_recovers_after_reopen() {
        let dir = tmpdir();
        {
            let mut s = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
            s.put(Key::from("x"), rec(1, "one")).unwrap();
            s.put(Key::from("y"), rec(2, "two")).unwrap();
            s.put(Key::from("x"), rec(3, "three")).unwrap();
        } // dropped without any explicit close: WAL already synced
        let s = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(s.latest(b"x").unwrap().value, Bytes::from("three"));
        assert_eq!(s.latest(b"y").unwrap().value, Bytes::from("two"));
        assert_eq!(s.version_count(), 3);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_wal_and_preserves_data() {
        let dir = tmpdir();
        {
            let mut s = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
            for i in 0..10 {
                s.put(Key::from(format!("k{i}")), rec(i as u64 + 1, "v"))
                    .unwrap();
            }
            let before = s.wal_len();
            assert!(before > 0);
            s.checkpoint().unwrap();
            assert_eq!(s.wal_len(), 0);
            // writes after checkpoint land in the fresh WAL
            s.put(Key::from("after"), rec(100, "post")).unwrap();
        }
        let s = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(s.key_count(), 11);
        assert_eq!(s.latest(b"after").unwrap().value, Bytes::from("post"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn group_commit_policy_syncs_every_n() {
        let dir = tmpdir();
        let mut s = DurableStore::open(&dir, SyncPolicy::EveryN(3)).unwrap();
        for i in 0..7 {
            s.put(Key::from(format!("k{i}")), rec(i as u64 + 1, "v"))
                .unwrap();
        }
        // no assertion on fsync timing (not observable portably), but the
        // data must still be readable and recoverable after drop+sync
        s.sync().unwrap();
        drop(s);
        let s = DurableStore::open(&dir, SyncPolicy::EveryN(3)).unwrap();
        assert_eq!(s.key_count(), 7);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn scan_prefix_via_trait() {
        let mut s: Box<dyn Store> = Box::new(MemStore::new());
        s.put(Key::from("p/a"), rec(1, "1")).unwrap();
        s.put(Key::from("p/b"), rec(2, "2")).unwrap();
        s.put(Key::from("q/a"), rec(3, "3")).unwrap();
        assert_eq!(s.scan_prefix(b"p/").len(), 2);
        assert_eq!(
            s.scan_prefix_at_or_below(b"p/", VersionStamp::new(1, 9))
                .len(),
            1
        );
    }

    #[test]
    fn recovered_records_counts_replayed_versions() {
        let dir = tmpdir();
        {
            let mut s = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
            assert_eq!(s.recovered_records(), 0, "fresh store recovers nothing");
            s.put(Key::from("x"), rec(1, "one")).unwrap();
            s.put(Key::from("x"), rec(2, "two")).unwrap();
            s.put(Key::from("y"), rec(3, "three")).unwrap();
        }
        let s = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(s.recovered_records(), 3);
        assert_eq!(MemStore::new().recovered_records(), 0);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_tail_recovery_drops_only_the_last_record() {
        let dir = tmpdir();
        {
            let mut s = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
            s.put(Key::from("a"), rec(1, "keep")).unwrap();
            s.put(Key::from("b"), rec(2, "torn")).unwrap();
        }
        Wal::chop_tail(DurableStore::wal_path(&dir), 3).unwrap();
        let s = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(s.recovered_records(), 1);
        assert_eq!(s.latest(b"a").unwrap().value, Bytes::from("keep"));
        assert!(s.latest(b"b").is_none(), "torn record must not recover");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn all_versions_dumps_whole_chains() {
        let mut s = MemStore::new();
        s.put(Key::from("x"), rec(1, "a")).unwrap();
        s.put(Key::from("x"), rec(2, "b")).unwrap();
        s.put(Key::from("y"), rec(3, "c")).unwrap();
        let dump = s.all_versions();
        assert_eq!(dump.len(), 3);
        assert_eq!(
            dump.iter()
                .map(|(k, r)| (k.as_ref().to_vec(), r.stamp.seq))
                .collect::<Vec<_>>(),
            vec![(b"x".to_vec(), 1), (b"x".to_vec(), 2), (b"y".to_vec(), 3)],
            "key order, version order within key"
        );
    }

    #[test]
    fn siblings_survive_recovery() {
        let dir = tmpdir();
        {
            let mut s = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
            s.put(
                Key::from("x"),
                Record::with_siblings(
                    VersionStamp::new(1, 2),
                    Bytes::from("v"),
                    vec![Key::from("x"), Key::from("y")],
                )
                .into(),
            )
            .unwrap();
        }
        let s = DurableStore::open(&dir, SyncPolicy::Always).unwrap();
        let r = s.latest(b"x").unwrap();
        assert_eq!(r.siblings, vec![Key::from("x"), Key::from("y")]);
        assert_eq!(r.stamp, VersionStamp::new(1, 2));
        std::fs::remove_dir_all(dir).unwrap();
    }
}
