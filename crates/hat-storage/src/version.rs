//! Version stamps and versioned records.
//!
//! The paper's Read Uncommitted algorithm (§5.1.1) totally orders writes
//! per item by "marking each of a transaction's writes with the same
//! timestamp (unique across transactions; e.g., combining a client's ID
//! with a sequence number) and applying a 'last writer wins' conflict
//! reconciliation policy at each replica". [`VersionStamp`] is exactly
//! that timestamp: ordered first by sequence number, then by writer id as
//! a deterministic tiebreak, so every pair of distinct stamps is ordered
//! and all replicas agree on the order.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A key in the store. Keys are arbitrary byte strings; string keys are
/// the common case (`Key::from("x")`).
pub type Key = Bytes;

/// A shared handle to a stored record.
///
/// A record is allocated once — when a client write is applied — and then
/// travels the entire read/replication path (memtable chains, replication
/// log entries, in-flight messages, client caches) as this refcounted
/// handle. Cloning it bumps a counter instead of deep-copying value bytes
/// and sibling lists; the only remaining deep copy is the WAL append,
/// which is a serialization boundary. `Record: From` makes both
/// `rec.into()` and `Arc::new(rec)` work at construction sites.
pub type SharedRecord = Arc<Record>;

/// A globally unique, totally ordered write timestamp: `(seq, writer)`.
///
/// `seq` is a per-writer logical sequence number (in the prototype, the
/// client's transaction counter); `writer` is the client id. Two stamps
/// from different writers with equal `seq` are ordered by writer id — an
/// arbitrary but *consistent* order, which is all last-writer-wins needs.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VersionStamp {
    /// Logical sequence number (major component).
    pub seq: u64,
    /// Writer (client) id (tiebreak component).
    pub writer: u32,
}

impl VersionStamp {
    /// The stamp of the initial (null, `⊥`) version of every item.
    pub const INITIAL: VersionStamp = VersionStamp { seq: 0, writer: 0 };

    /// Builds a stamp.
    pub fn new(seq: u64, writer: u32) -> Self {
        VersionStamp { seq, writer }
    }

    /// True for the initial `⊥` stamp.
    pub fn is_initial(self) -> bool {
        self == Self::INITIAL
    }
}

impl fmt::Display for VersionStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@c{}", self.seq, self.writer)
    }
}

/// A stored version of one item: the stamp, the value bytes, and the
/// transaction's sibling metadata.
///
/// `siblings` is the MAV algorithm's `tx_keys` list (Appendix B): the set
/// of keys written by the same transaction. Protocols that do not need it
/// leave it empty; the storage layer treats it as opaque.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// Version stamp (transaction timestamp).
    pub stamp: VersionStamp,
    /// Value bytes.
    pub value: Bytes,
    /// Keys written by the same transaction (MAV metadata), possibly empty.
    pub siblings: Vec<Key>,
}

impl Record {
    /// Builds a record with no sibling metadata.
    pub fn new(stamp: VersionStamp, value: impl Into<Bytes>) -> Self {
        Record {
            stamp,
            value: value.into(),
            siblings: Vec::new(),
        }
    }

    /// Builds a record carrying the transaction's sibling key list.
    pub fn with_siblings(stamp: VersionStamp, value: impl Into<Bytes>, siblings: Vec<Key>) -> Self {
        Record {
            stamp,
            value: value.into(),
            siblings,
        }
    }

    /// Approximate serialized size in bytes: the measure used for the
    /// paper's metadata-overhead discussion (Figure 4: 34 B of overhead at
    /// 1 op/txn growing to ~1.9 kB at 128 ops/txn).
    pub fn encoded_len(&self) -> usize {
        // stamp (12) + value length prefix (4) + value + per-sibling
        // length prefix (4) + sibling bytes
        12 + 4 + self.value.len() + self.siblings.iter().map(|s| 4 + s.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_total_order() {
        let a = VersionStamp::new(1, 0);
        let b = VersionStamp::new(1, 1);
        let c = VersionStamp::new(2, 0);
        assert!(a < b, "writer id breaks ties");
        assert!(b < c, "seq dominates writer");
        assert!(a < c);
        assert!(VersionStamp::INITIAL < a);
        assert!(VersionStamp::INITIAL.is_initial());
        assert!(!a.is_initial());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(VersionStamp::new(7, 3).to_string(), "7@c3");
    }

    #[test]
    fn encoded_len_grows_with_siblings() {
        let base = Record::new(VersionStamp::new(1, 1), Bytes::from(vec![0u8; 100]));
        let with = Record::with_siblings(
            VersionStamp::new(1, 1),
            Bytes::from(vec![0u8; 100]),
            vec![Key::from("key-00000001"), Key::from("key-00000002")],
        );
        assert!(with.encoded_len() > base.encoded_len());
        assert_eq!(
            with.encoded_len() - base.encoded_len(),
            2 * (4 + 12),
            "two 12-byte sibling keys with 4-byte prefixes"
        );
    }
}
