//! Append-only, checksummed write-ahead log.
//!
//! Record framing: `[u32 payload_len][u32 crc32(payload)][payload]`, all
//! little-endian. On recovery the log is replayed front to back; a record
//! that fails its length or checksum *at the tail* is treated as a torn
//! write (the crash happened mid-append) and discarded, while a bad record
//! *followed by valid data* is reported as corruption — the same policy
//! LevelDB's log reader applies.

use crate::error::{Result, StorageError};
use crate::version::{Key, Record, VersionStamp};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// One logical WAL entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalEntry {
    /// A version installed for `key`.
    Put {
        /// The written key.
        key: Key,
        /// The installed version.
        record: Record,
    },
    /// A checkpoint marker: all versions `≤ stamp` are persisted in a
    /// checkpoint file, so earlier entries may be dropped at compaction.
    Checkpoint {
        /// Upper stamp bound covered by the checkpoint.
        stamp: VersionStamp,
    },
}

const TAG_PUT: u8 = 1;
const TAG_CHECKPOINT: u8 = 2;

/// Encodes an entry payload (without framing).
pub fn encode_entry(entry: &WalEntry) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    match entry {
        WalEntry::Put { key, record } => {
            buf.put_u8(TAG_PUT);
            put_bytes(&mut buf, key);
            buf.put_u64_le(record.stamp.seq);
            buf.put_u32_le(record.stamp.writer);
            put_bytes(&mut buf, &record.value);
            buf.put_u32_le(record.siblings.len() as u32);
            for s in &record.siblings {
                put_bytes(&mut buf, s);
            }
        }
        WalEntry::Checkpoint { stamp } => {
            buf.put_u8(TAG_CHECKPOINT);
            buf.put_u64_le(stamp.seq);
            buf.put_u32_le(stamp.writer);
        }
    }
    buf.freeze()
}

/// Decodes an entry payload produced by [`encode_entry`].
pub fn decode_entry(mut buf: &[u8]) -> Option<WalEntry> {
    if buf.is_empty() {
        return None;
    }
    let tag = buf.get_u8();
    match tag {
        TAG_PUT => {
            let key = get_bytes(&mut buf)?;
            if buf.remaining() < 12 {
                return None;
            }
            let seq = buf.get_u64_le();
            let writer = buf.get_u32_le();
            let value = get_bytes(&mut buf)?;
            if buf.remaining() < 4 {
                return None;
            }
            let nsibs = buf.get_u32_le() as usize;
            let mut siblings = Vec::with_capacity(nsibs.min(1024));
            for _ in 0..nsibs {
                siblings.push(get_bytes(&mut buf)?);
            }
            Some(WalEntry::Put {
                key,
                record: Record {
                    stamp: VersionStamp::new(seq, writer),
                    value,
                    siblings,
                },
            })
        }
        TAG_CHECKPOINT => {
            if buf.remaining() < 12 {
                return None;
            }
            let seq = buf.get_u64_le();
            let writer = buf.get_u32_le();
            Some(WalEntry::Checkpoint {
                stamp: VersionStamp::new(seq, writer),
            })
        }
        _ => None,
    }
}

fn put_bytes(buf: &mut BytesMut, b: &[u8]) {
    buf.put_u32_le(b.len() as u32);
    buf.put_slice(b);
}

fn get_bytes(buf: &mut &[u8]) -> Option<Bytes> {
    if buf.remaining() < 4 {
        return None;
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return None;
    }
    let out = Bytes::copy_from_slice(&buf[..len]);
    buf.advance(len);
    Some(out)
}

/// CRC-32 (IEEE 802.3 polynomial, reflected).
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// An open write-ahead log.
pub struct Wal {
    file: File,
    path: PathBuf,
    appended: u64,
}

impl Wal {
    /// Opens (creating if absent) the log at `path` for appending.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        let appended = file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            file,
            path,
            appended,
        })
    }

    /// Appends one entry (buffered in the OS; call [`Wal::sync`] for
    /// durability).
    pub fn append(&mut self, entry: &WalEntry) -> Result<()> {
        let payload = encode_entry(entry);
        let mut frame = BytesMut::with_capacity(payload.len() + 8);
        frame.put_u32_le(payload.len() as u32);
        frame.put_u32_le(crc32(&payload));
        frame.put_slice(&payload);
        self.file.write_all(&frame)?;
        self.appended += frame.len() as u64;
        Ok(())
    }

    /// Forces appended entries to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Bytes appended so far (including pre-existing content).
    pub fn len(&self) -> u64 {
        self.appended
    }

    /// True if the log contains no bytes.
    pub fn is_empty(&self) -> bool {
        self.appended == 0
    }

    /// Truncates the log to zero length (after a checkpoint has been
    /// written elsewhere).
    pub fn reset(&mut self) -> Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::End(0))?;
        self.appended = 0;
        self.file.sync_data()?;
        Ok(())
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Chops `bytes` off the end of the log at `path` — the torn-write
    /// fault: a crash mid-append leaves a partial final frame, which
    /// [`Wal::replay`] must discard while keeping the valid prefix.
    /// Chopping more bytes than the file holds empties it. No-op on a
    /// missing file.
    pub fn chop_tail(path: impl AsRef<Path>, bytes: u64) -> Result<()> {
        let file = match OpenOptions::new().write(true).open(path.as_ref()) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        let len = file.metadata()?.len();
        file.set_len(len.saturating_sub(bytes))?;
        file.sync_data()?;
        Ok(())
    }

    /// Appends `junk` bytes of a partial frame to the log at `path` —
    /// the torn-write fault: a crash mid-append leaves a final frame
    /// whose header promises more bytes than reached the disk.
    /// [`Wal::replay`] discards it and [`Wal::truncate_torn_tail`]
    /// removes it. Synced (acknowledged) records are never affected —
    /// that is what distinguishes a torn tail from disk corruption,
    /// which no recovery protocol can be expected to mask. No-op when
    /// `junk` is 0 or the file does not exist.
    pub fn tear_tail(path: impl AsRef<Path>, junk: u64) -> Result<()> {
        if junk == 0 {
            return Ok(());
        }
        let mut file = match OpenOptions::new().append(true).open(path.as_ref()) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e.into()),
        };
        let mut frame = Vec::with_capacity(junk as usize);
        if junk >= 8 {
            let body = (junk - 8) as u32;
            // Promise more payload than was flushed: a guaranteed short
            // read at replay, independent of the junk's content.
            frame.extend_from_slice(&(body + 64).to_le_bytes());
            frame.extend_from_slice(&0u32.to_le_bytes());
            frame.resize(junk as usize, 0xAA);
        } else {
            frame.resize(junk as usize, 0xAA);
        }
        file.write_all(&frame)?;
        file.sync_data()?;
        Ok(())
    }

    /// Truncates the log at `path` to its valid frame prefix, removing a
    /// torn tail left by a crash mid-append. Returns the bytes removed.
    /// Recovery must run this before appending to a replayed log —
    /// otherwise new frames would land *after* the torn one and be
    /// unreachable to a future replay.
    pub fn truncate_torn_tail(path: impl AsRef<Path>) -> Result<u64> {
        let mut data = Vec::new();
        match File::open(path.as_ref()) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e.into()),
        }
        let (_, valid) = scan(&data)?;
        let trimmed = data.len() as u64 - valid;
        if trimmed > 0 {
            let file = OpenOptions::new().write(true).open(path.as_ref())?;
            file.set_len(valid)?;
            file.sync_data()?;
        }
        Ok(trimmed)
    }

    /// Replays the log at `path`, returning decoded entries.
    ///
    /// A framing/checksum failure at the tail is treated as a torn write:
    /// replay stops and the valid prefix is returned. A failure *before*
    /// valid trailing data returns [`StorageError::Corrupt`].
    pub fn replay(path: impl AsRef<Path>) -> Result<Vec<WalEntry>> {
        let mut data = Vec::new();
        match File::open(path.as_ref()) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        }
        let (entries, _) = scan(&data)?;
        Ok(entries)
    }
}

/// Walks the frame sequence in `data`, returning the decoded entries and
/// the byte length of the valid prefix (a torn tail ends it early).
fn scan(data: &[u8]) -> Result<(Vec<WalEntry>, u64)> {
    let mut entries = Vec::new();
    {
        let mut offset = 0usize;
        let mut tail_error: Option<u64> = None;
        while offset < data.len() {
            let start = offset;
            if data.len() - offset < 8 {
                tail_error = Some(start as u64);
                break;
            }
            let len = u32::from_le_bytes(data[offset..offset + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(data[offset + 4..offset + 8].try_into().unwrap());
            offset += 8;
            if data.len() - offset < len {
                tail_error = Some(start as u64);
                break;
            }
            let payload = &data[offset..offset + len];
            offset += len;
            if crc32(payload) != crc {
                // Bad checksum: torn tail if nothing valid follows,
                // corruption otherwise. We conservatively check whether the
                // remaining bytes parse as at least one valid record.
                if has_valid_record(&data[offset..]) {
                    return Err(StorageError::Corrupt {
                        offset: start as u64,
                        reason: "checksum mismatch before valid trailing records".into(),
                    });
                }
                tail_error = Some(start as u64);
                break;
            }
            match decode_entry(payload) {
                Some(e) => entries.push(e),
                None => {
                    return Err(StorageError::Corrupt {
                        offset: start as u64,
                        reason: "undecodable payload with valid checksum".into(),
                    })
                }
            }
        }
        // Torn tails are expected after crashes: the valid prefix ends
        // where the first damaged frame starts.
        let valid = tail_error.unwrap_or(data.len() as u64);
        Ok((entries, valid))
    }
}

fn has_valid_record(mut data: &[u8]) -> bool {
    while data.len() >= 8 {
        let len = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(data[4..8].try_into().unwrap());
        if data.len() - 8 < len {
            return false;
        }
        if crc32(&data[8..8 + len]) == crc {
            return true;
        }
        data = &data[8 + len..];
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "hat-wal-test-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn put(key: &str, seq: u64, val: &str, sibs: &[&str]) -> WalEntry {
        WalEntry::Put {
            key: Key::from(key.to_owned()),
            record: Record::with_siblings(
                VersionStamp::new(seq, 1),
                Bytes::from(val.to_owned()),
                sibs.iter().map(|s| Key::from(s.to_string())).collect(),
            ),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        for entry in [
            put("x", 3, "hello", &[]),
            put("y", 9, "", &["x", "y", "z"]),
            WalEntry::Checkpoint {
                stamp: VersionStamp::new(77, 2),
            },
        ] {
            let enc = encode_entry(&entry);
            assert_eq!(decode_entry(&enc), Some(entry));
        }
    }

    #[test]
    fn tear_tail_spares_synced_records_and_recovery_truncates() {
        let dir = tmpdir();
        let path = dir.join("wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&put("a", 1, "v1", &[])).unwrap();
            wal.append(&put("b", 2, "v2", &[])).unwrap();
            wal.sync().unwrap();
        }
        for junk in [3u64, 48] {
            Wal::tear_tail(&path, junk).unwrap();
            // Replay discards the torn frame, keeps every synced record.
            assert_eq!(Wal::replay(&path).unwrap().len(), 2, "junk={junk}");
            // Recovery cuts the damage so future appends stay reachable.
            let trimmed = Wal::truncate_torn_tail(&path).unwrap();
            assert_eq!(trimmed, junk);
        }
        assert_eq!(Wal::truncate_torn_tail(&path).unwrap(), 0, "clean log");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&put("c", 3, "v3", &[])).unwrap();
        wal.sync().unwrap();
        drop(wal);
        assert_eq!(Wal::replay(&path).unwrap().len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn decode_rejects_truncated() {
        let enc = encode_entry(&put("abc", 1, "value", &["s1"]));
        for cut in 1..enc.len() {
            assert_eq!(decode_entry(&enc[..cut]), None, "cut at {cut}");
        }
        assert_eq!(decode_entry(&[]), None);
        assert_eq!(decode_entry(&[99]), None, "unknown tag");
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: crc32("123456789") = 0xCBF43926
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_replay() {
        let dir = tmpdir();
        let path = dir.join("wal");
        let entries = vec![
            put("a", 1, "1", &[]),
            put("b", 2, "2", &["a", "b"]),
            WalEntry::Checkpoint {
                stamp: VersionStamp::new(2, 1),
            },
            put("a", 3, "3", &[]),
        ];
        {
            let mut wal = Wal::open(&path).unwrap();
            assert!(wal.is_empty());
            for e in &entries {
                wal.append(e).unwrap();
            }
            wal.sync().unwrap();
            assert!(!wal.is_empty());
        }
        assert_eq!(Wal::replay(&path).unwrap(), entries);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let dir = tmpdir();
        assert!(Wal::replay(dir.join("nope")).unwrap().is_empty());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded() {
        let dir = tmpdir();
        let path = dir.join("wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&put("a", 1, "1", &[])).unwrap();
            wal.append(&put("b", 2, "2", &[])).unwrap();
            wal.sync().unwrap();
        }
        // simulate a crash mid-append: chop bytes off the tail
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 3]).unwrap();
        let replayed = Wal::replay(&path).unwrap();
        assert_eq!(replayed.len(), 1);
        assert!(matches!(&replayed[0], WalEntry::Put { key, .. } if key.as_ref() == b"a"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_an_error() {
        let dir = tmpdir();
        let path = dir.join("wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&put("a", 1, "aaaaaaaa", &[])).unwrap();
            wal.append(&put("b", 2, "bbbbbbbb", &[])).unwrap();
            wal.sync().unwrap();
        }
        // flip a payload byte in the first record
        let mut data = std::fs::read(&path).unwrap();
        data[10] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        match Wal::replay(&path) {
            Err(StorageError::Corrupt { .. }) => {}
            other => panic!("expected corruption error, got {other:?}"),
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn reset_empties_log() {
        let dir = tmpdir();
        let path = dir.join("wal");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&put("a", 1, "1", &[])).unwrap();
        wal.sync().unwrap();
        wal.reset().unwrap();
        assert!(wal.is_empty());
        assert!(Wal::replay(&path).unwrap().is_empty());
        // appends still work after reset
        wal.append(&put("b", 2, "2", &[])).unwrap();
        wal.sync().unwrap();
        assert_eq!(Wal::replay(&path).unwrap().len(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn reopen_appends_after_existing_content() {
        let dir = tmpdir();
        let path = dir.join("wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&put("a", 1, "1", &[])).unwrap();
            wal.sync().unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            assert!(!wal.is_empty());
            wal.append(&put("b", 2, "2", &[])).unwrap();
            wal.sync().unwrap();
        }
        assert_eq!(Wal::replay(&path).unwrap().len(), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn garbage_file_reports_corruption_or_empty() {
        let dir = tmpdir();
        let path = dir.join("wal");
        use std::io::Write as _;
        let mut f = File::create(&path).unwrap();
        f.write_all(&[7u8; 5]).unwrap(); // shorter than a header
        drop(f);
        // too short for a header: treated as torn tail -> empty
        assert!(Wal::replay(&path).unwrap().is_empty());
        std::fs::remove_dir_all(dir).unwrap();
    }
}
