//! Deterministic structured tracing for the HAT repro.
//!
//! Every layer of the stack (client, server, network, WAL, nemesis)
//! reports [`TraceEvent`]s into a shared [`TraceSink`]. The sink has two
//! modes:
//!
//! - **disabled** (the default, behind `SystemConfig::trace = false`):
//!   [`TraceSink::record`] returns before touching any state — no
//!   allocation, no lock, no atomic. A process-wide counter
//!   ([`events_recorded_total`]) only moves when an *enabled* sink stores
//!   an event, so "tracing off ⇒ zero trace allocations" is checkable.
//! - **enabled**: events are stamped with the caller-supplied time
//!   (simulated microseconds under `hat-sim`, monotonic process
//!   microseconds under the threaded runtime) plus a global sequence
//!   number, so a single-threaded simulation produces a byte-identical
//!   trace for a given seed.
//!
//! On top of the flat event stream the crate reconstructs per-transaction
//! span trees ([`spans`]), renders fault-annotated timeline windows
//! ([`format_window`]), and exports Chrome-trace-format JSON
//! ([`TraceSink::to_chrome_json`]) that opens in `about:tracing` or
//! Perfetto.
//!
//! The crate is dependency-free on purpose: `hat-sim` and `hat-storage`
//! stay trace-agnostic (they expose generic hooks instead), while
//! `hat-core`, `hat-runtime`, `hat-nemesis`, and `hat-bench` link this
//! crate directly.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Process-wide count of events stored by *enabled* sinks. Disabled
/// sinks never touch it; CI asserts it stays flat in no-trace runs.
static EVENTS_RECORDED: AtomicU64 = AtomicU64::new(0);

/// Total events recorded by enabled sinks since process start.
pub fn events_recorded_total() -> u64 {
    EVENTS_RECORDED.load(Ordering::Relaxed)
}

/// Stable transaction identity: the issuing client node and the
/// client-local session sequence number. Matches `TxnRecord` identity in
/// `hat-core`, so a trace line can be joined back to the history checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId {
    /// Node id of the issuing client.
    pub client: u32,
    /// Session-local transaction sequence number.
    pub seq: u64,
}

impl TxnId {
    pub fn new(client: u32, seq: u64) -> Self {
        TxnId { client, seq }
    }
}

/// What kind of client operation a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    Get,
    GetMany,
    Scan,
    Put,
    Lock,
    Commit,
}

impl OpKind {
    /// Short stable label (used in Chrome traces and metrics JSON).
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Get => "get",
            OpKind::GetMany => "get_many",
            OpKind::Scan => "scan",
            OpKind::Put => "put",
            OpKind::Lock => "lock",
            OpKind::Commit => "commit",
        }
    }

    /// Every kind, in label order. Handy for per-kind reporting loops.
    pub const ALL: [OpKind; 6] = [
        OpKind::Get,
        OpKind::GetMany,
        OpKind::Scan,
        OpKind::Put,
        OpKind::Lock,
        OpKind::Commit,
    ];
}

/// Why the simulated network dropped a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// An active partition blocked the link.
    Partition,
    /// The destination node was crashed at delivery time.
    Crashed,
}

/// One structured trace event. `time_us` is simulated time in the sim
/// frontend and monotonic-since-start time in the threaded runtime;
/// `node` is the reporting node; `seq` is a sink-global sequence number
/// that makes the order total (and, single-threaded, deterministic).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub time_us: u64,
    pub node: u32,
    pub seq: u64,
    pub kind: TraceEventKind,
}

/// The event vocabulary. Everything the acceptance criteria need to
/// explain a run: transaction lifecycle, per-op spans and retries,
/// message traffic with byte counts, lock waits, anti-entropy rounds,
/// WAL appends/replays, crashes, and nemesis fault windows.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    TxnBegin {
        txn: TxnId,
    },
    TxnCommit {
        txn: TxnId,
    },
    TxnAbort {
        txn: TxnId,
        /// True for system-internal aborts (validation), false for
        /// external ones (lock timeout, unavailability).
        internal: bool,
    },
    /// The session walked away mid-transaction. `indeterminate` marks an
    /// abandon with a commit in flight — the outcome is unknown.
    TxnAbandon {
        txn: TxnId,
        indeterminate: bool,
    },
    OpStart {
        txn: TxnId,
        kind: OpKind,
    },
    OpEnd {
        txn: TxnId,
        kind: OpKind,
    },
    /// The retry policy re-issued an in-flight op (or commit round).
    OpRetry {
        txn: TxnId,
    },
    MsgSend {
        from: u32,
        to: u32,
        label: &'static str,
        bytes: u64,
    },
    MsgRecv {
        from: u32,
        to: u32,
        label: &'static str,
        bytes: u64,
    },
    MsgDrop {
        from: u32,
        to: u32,
        label: &'static str,
        reason: DropReason,
    },
    LockWait {
        txn: TxnId,
        key: String,
    },
    LockGrant {
        txn: TxnId,
        key: String,
    },
    /// One anti-entropy push to one peer (`delta` = compacted catch-up).
    AntiEntropyRound {
        peer: u32,
        records: u64,
        bytes: u64,
        delta: bool,
    },
    WalAppend {
        bytes: u64,
    },
    WalReplay {
        records: u64,
    },
    Crash,
    Restart,
    /// A nemesis fault window opened (partition, skew, crash, …).
    FaultBegin {
        desc: String,
    },
    /// A nemesis fault window closed (heal / restart).
    FaultEnd {
        desc: String,
    },
    /// A shard handoff started: the emitting server began streaming
    /// `token`'s records to `to`.
    ShardHandoffBegin {
        token: u32,
        to: u32,
        snapshot: u64,
    },
    /// The new owner acknowledged the full snapshot; the emitting server
    /// stopped serving the token and now NACKs requests toward `to`.
    ShardHandoffDone {
        token: u32,
        to: u32,
        streamed: u64,
    },
    /// A client was NACKed with `WrongShard` and re-routed the request
    /// to the shard's new owner.
    ShardRedirect {
        txn: TxnId,
        owner: u32,
    },
}

impl TraceEventKind {
    /// Transaction-lifecycle events survive into the canonical projection
    /// used for threaded-runtime determinism checks (timing-free).
    fn is_txn_lifecycle(&self) -> bool {
        matches!(
            self,
            TraceEventKind::TxnBegin { .. }
                | TraceEventKind::TxnCommit { .. }
                | TraceEventKind::TxnAbort { .. }
                | TraceEventKind::TxnAbandon { .. }
        )
    }

    fn is_fault(&self) -> bool {
        matches!(
            self,
            TraceEventKind::FaultBegin { .. }
                | TraceEventKind::FaultEnd { .. }
                | TraceEventKind::Crash
                | TraceEventKind::Restart
                | TraceEventKind::ShardHandoffBegin { .. }
                | TraceEventKind::ShardHandoffDone { .. }
        )
    }
}

struct Shared {
    events: Mutex<Vec<TraceEvent>>,
    seq: AtomicU64,
}

/// A cloneable handle to one shared event buffer — or to nothing at all.
///
/// `TraceSink::disabled()` (also `Default`) is a no-op handle: `record`
/// returns immediately without locking, allocating, or counting.
/// `TraceSink::enabled()` allocates the shared buffer; clones of it all
/// append to the same globally-ordered stream.
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<Shared>>,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "TraceSink(disabled)"),
            Some(s) => write!(f, "TraceSink({} events)", s.events.lock().unwrap().len()),
        }
    }
}

impl TraceSink {
    /// The no-op sink. Zero cost on `record`.
    pub fn disabled() -> Self {
        TraceSink { inner: None }
    }

    /// A live sink with an empty shared buffer.
    pub fn enabled() -> Self {
        TraceSink {
            inner: Some(Arc::new(Shared {
                events: Mutex::new(Vec::new()),
                seq: AtomicU64::new(0),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one event. Disabled sinks return before doing anything.
    pub fn record(&self, time_us: u64, node: u32, kind: TraceEventKind) {
        let Some(shared) = &self.inner else {
            return;
        };
        let seq = shared.seq.fetch_add(1, Ordering::Relaxed);
        EVENTS_RECORDED.fetch_add(1, Ordering::Relaxed);
        shared.events.lock().unwrap().push(TraceEvent {
            time_us,
            node,
            seq,
            kind,
        });
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(s) => s.events.lock().unwrap().len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the event stream in total order `(time_us, seq)`.
    /// Under the single-threaded simulator the append order already *is*
    /// this order, so the snapshot is seed-stable byte for byte.
    pub fn events(&self) -> Vec<TraceEvent> {
        let Some(shared) = &self.inner else {
            return Vec::new();
        };
        let mut out = shared.events.lock().unwrap().clone();
        out.sort_by_key(|e| (e.time_us, e.seq));
        out
    }

    /// Drain the buffer (snapshot + clear), same ordering as [`events`].
    ///
    /// [`events`]: TraceSink::events
    pub fn take_events(&self) -> Vec<TraceEvent> {
        let Some(shared) = &self.inner else {
            return Vec::new();
        };
        let mut out = std::mem::take(&mut *shared.events.lock().unwrap());
        out.sort_by_key(|e| (e.time_us, e.seq));
        out
    }

    /// Timing-free per-node projection of transaction-lifecycle events.
    ///
    /// The threaded runtime interleaves nodes nondeterministically and
    /// stamps wall-clock-derived times, so full traces differ run to run.
    /// What *is* deterministic (and what the conformance suite pins via
    /// bit-identical records) is each client's ordered sequence of
    /// begin/commit/abort/abandon outcomes — exactly this projection.
    pub fn canonical_projection(&self) -> BTreeMap<u32, Vec<TraceEventKind>> {
        let mut by_node: BTreeMap<u32, Vec<(u64, TraceEventKind)>> = BTreeMap::new();
        for e in self.events() {
            if e.kind.is_txn_lifecycle() {
                by_node.entry(e.node).or_default().push((e.seq, e.kind));
            }
        }
        by_node
            .into_iter()
            .map(|(node, mut evs)| {
                evs.sort_by_key(|(seq, _)| *seq);
                (node, evs.into_iter().map(|(_, k)| k).collect())
            })
            .collect()
    }

    /// Export the whole trace as Chrome-trace-format JSON (the
    /// `traceEvents` array form). Transactions and their ops become
    /// complete (`"ph":"X"`) duration events; faults, crashes, WAL and
    /// anti-entropy activity become instant (`"ph":"i"`) events. Open the
    /// output in `about:tracing` or <https://ui.perfetto.dev>.
    pub fn to_chrome_json(&self) -> String {
        chrome_json(&self.events())
    }
}

/// One operation inside a transaction span.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSpan {
    pub kind: OpKind,
    pub start_us: u64,
    /// `None` while the op never completed (txn aborted mid-op).
    pub end_us: Option<u64>,
}

/// A reconstructed per-transaction span tree: the transaction envelope
/// plus its ordered child op spans and retry count.
#[derive(Debug, Clone, PartialEq)]
pub struct TxnSpan {
    pub txn: TxnId,
    /// Node that ran the transaction (the client).
    pub node: u32,
    pub begin_us: u64,
    /// `None` when the trace ends before the transaction resolved.
    pub end_us: Option<u64>,
    /// `"commit"`, `"abort-internal"`, `"abort-external"`,
    /// `"indeterminate"`, `"abandon"`, or `"open"`.
    pub outcome: &'static str,
    pub ops: Vec<OpSpan>,
    pub retries: u32,
}

impl TxnSpan {
    /// A span is complete when it has both a begin and a resolution.
    pub fn is_complete(&self) -> bool {
        self.end_us.is_some()
    }
}

/// Reconstruct per-transaction span trees from an ordered event stream.
/// Spans come back sorted by `(begin_us, txn)`.
pub fn spans(events: &[TraceEvent]) -> Vec<TxnSpan> {
    let mut open: BTreeMap<TxnId, TxnSpan> = BTreeMap::new();
    let mut done: Vec<TxnSpan> = Vec::new();
    for e in events {
        match &e.kind {
            TraceEventKind::TxnBegin { txn } => {
                // A client begins transactions strictly one at a time, so
                // a dangling open span with the same id is a truncated
                // trace; flush it as-is.
                if let Some(prev) = open.remove(txn) {
                    done.push(prev);
                }
                open.insert(
                    *txn,
                    TxnSpan {
                        txn: *txn,
                        node: e.node,
                        begin_us: e.time_us,
                        end_us: None,
                        outcome: "open",
                        ops: Vec::new(),
                        retries: 0,
                    },
                );
            }
            TraceEventKind::TxnCommit { txn } => {
                close(&mut open, &mut done, txn, e.time_us, "commit");
            }
            TraceEventKind::TxnAbort { txn, internal } => {
                let outcome = if *internal {
                    "abort-internal"
                } else {
                    "abort-external"
                };
                close(&mut open, &mut done, txn, e.time_us, outcome);
            }
            TraceEventKind::TxnAbandon { txn, indeterminate } => {
                let outcome = if *indeterminate {
                    "indeterminate"
                } else {
                    "abandon"
                };
                close(&mut open, &mut done, txn, e.time_us, outcome);
            }
            TraceEventKind::OpStart { txn, kind } => {
                if let Some(span) = open.get_mut(txn) {
                    span.ops.push(OpSpan {
                        kind: *kind,
                        start_us: e.time_us,
                        end_us: None,
                    });
                }
            }
            TraceEventKind::OpEnd { txn, kind } => {
                if let Some(span) = open.get_mut(txn) {
                    if let Some(op) = span
                        .ops
                        .iter_mut()
                        .rev()
                        .find(|o| o.kind == *kind && o.end_us.is_none())
                    {
                        op.end_us = Some(e.time_us);
                    }
                }
            }
            TraceEventKind::OpRetry { txn } => {
                if let Some(span) = open.get_mut(txn) {
                    span.retries += 1;
                }
            }
            _ => {}
        }
    }
    done.extend(open.into_values());
    done.sort_by_key(|s| (s.begin_us, s.txn));
    done
}

fn close(
    open: &mut BTreeMap<TxnId, TxnSpan>,
    done: &mut Vec<TxnSpan>,
    txn: &TxnId,
    at: u64,
    outcome: &'static str,
) {
    if let Some(mut span) = open.remove(txn) {
        span.end_us = Some(at);
        span.outcome = outcome;
        // Commit resolution closes the trailing commit op if one is open.
        for op in span.ops.iter_mut().rev() {
            if op.end_us.is_none() {
                op.end_us = Some(at);
            }
        }
        done.push(span);
    }
}

/// Minimal JSON string escaping (labels and fault descriptions are
/// repo-internal strings, but keys can hold arbitrary bytes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn chrome_json(events: &[TraceEvent]) -> String {
    let mut rows: Vec<String> = Vec::new();
    for span in spans(events) {
        let end = span.end_us.unwrap_or(span.begin_us);
        rows.push(format!(
            "{{\"name\":\"txn {}:{}\",\"cat\":\"txn\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"outcome\":\"{}\",\"retries\":{}}}}}",
            span.txn.client,
            span.txn.seq,
            span.begin_us,
            end.saturating_sub(span.begin_us),
            span.node,
            span.txn.client,
            span.outcome,
            span.retries,
        ));
        for op in &span.ops {
            let op_end = op.end_us.unwrap_or(end);
            rows.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"op\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"txn\":\"{}:{}\"}}}}",
                op.kind.label(),
                op.start_us,
                op_end.saturating_sub(op.start_us),
                span.node,
                span.txn.client,
                span.txn.client,
                span.txn.seq,
            ));
        }
    }
    for e in events {
        let instant = |name: String, args: String| {
            format!(
                "{{\"name\":\"{}\",\"cat\":\"sys\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{{{}}}}}",
                name, e.time_us, e.node, args
            )
        };
        match &e.kind {
            TraceEventKind::Crash => rows.push(instant("crash".into(), String::new())),
            TraceEventKind::Restart => rows.push(instant("restart".into(), String::new())),
            TraceEventKind::FaultBegin { desc } => rows.push(instant(
                format!("fault-begin {}", escape(desc)),
                String::new(),
            )),
            TraceEventKind::FaultEnd { desc } => rows.push(instant(
                format!("fault-end {}", escape(desc)),
                String::new(),
            )),
            TraceEventKind::WalReplay { records } => rows.push(instant(
                "wal-replay".into(),
                format!("\"records\":{records}"),
            )),
            TraceEventKind::ShardHandoffBegin {
                token,
                to,
                snapshot,
            } => rows.push(instant(
                "shard-handoff-begin".into(),
                format!("\"token\":{token},\"to\":{to},\"snapshot\":{snapshot}"),
            )),
            TraceEventKind::ShardHandoffDone {
                token,
                to,
                streamed,
            } => rows.push(instant(
                "shard-handoff-done".into(),
                format!("\"token\":{token},\"to\":{to},\"streamed\":{streamed}"),
            )),
            TraceEventKind::AntiEntropyRound {
                peer,
                records,
                bytes,
                delta,
            } => rows.push(instant(
                if *delta {
                    "delta-catchup".into()
                } else {
                    "anti-entropy".into()
                },
                format!("\"peer\":{peer},\"records\":{records},\"bytes\":{bytes}"),
            )),
            _ => {}
        }
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&rows.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Render the events inside `[from_us, to_us]` as an annotated text
/// timeline: one line per event, fault/crash lines flagged with `!!` so
/// a conformance-failure dump shows which fault windows overlapped the
/// violating transaction.
pub fn format_window(events: &[TraceEvent], from_us: u64, to_us: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "--- trace window [{from_us}us .. {to_us}us] ---");
    let mut shown = 0usize;
    for e in events {
        if e.time_us < from_us || e.time_us > to_us {
            continue;
        }
        let flag = if e.kind.is_fault() { "!!" } else { "  " };
        let _ = writeln!(
            out,
            "{flag} [{:>10}us n{:<3}] {:?}",
            e.time_us, e.node, e.kind
        );
        shown += 1;
    }
    let _ = writeln!(out, "--- {shown} events ---");
    out
}

/// Render the window around one transaction (its span ± `radius_us`),
/// annotated with every fault event in range. This is what the nemesis
/// runner prints when a conformance check fails.
pub fn format_txn_window(events: &[TraceEvent], txn: TxnId, radius_us: u64) -> String {
    let all = spans(events);
    let Some(span) = all.iter().find(|s| s.txn == txn) else {
        return format!("no span for txn {}:{} in trace\n", txn.client, txn.seq);
    };
    let from = span.begin_us.saturating_sub(radius_us);
    let to = span
        .end_us
        .unwrap_or(span.begin_us)
        .saturating_add(radius_us);
    let mut out = format!(
        "txn {}:{} on n{} [{}] {}us..{}us\n",
        txn.client,
        txn.seq,
        span.node,
        span.outcome,
        span.begin_us,
        span.end_us.unwrap_or(span.begin_us),
    );
    out.push_str(&format_window(events, from, to));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(c: u32, s: u64) -> TxnId {
        TxnId::new(c, s)
    }

    #[test]
    fn disabled_sink_is_inert_and_uncounted() {
        let before = events_recorded_total();
        let sink = TraceSink::disabled();
        for i in 0..100 {
            sink.record(i, 0, TraceEventKind::Crash);
        }
        assert!(!sink.is_enabled());
        assert_eq!(sink.len(), 0);
        assert!(sink.events().is_empty());
        assert_eq!(events_recorded_total(), before);
    }

    #[test]
    fn enabled_sink_orders_and_counts() {
        let before = events_recorded_total();
        let sink = TraceSink::enabled();
        let clone = sink.clone();
        sink.record(5, 1, TraceEventKind::TxnBegin { txn: txn(1, 0) });
        clone.record(5, 1, TraceEventKind::TxnCommit { txn: txn(1, 0) });
        sink.record(2, 2, TraceEventKind::Crash);
        let evs = sink.events();
        assert_eq!(evs.len(), 3);
        // Sorted by (time, seq): the crash at t=2 first, then the two
        // t=5 events in record order.
        assert_eq!(evs[0].kind, TraceEventKind::Crash);
        assert_eq!(evs[1].kind, TraceEventKind::TxnBegin { txn: txn(1, 0) });
        assert_eq!(evs[2].kind, TraceEventKind::TxnCommit { txn: txn(1, 0) });
        assert_eq!(events_recorded_total() - before, 3);
    }

    #[test]
    fn span_reconstruction_pairs_ops_and_outcomes() {
        let sink = TraceSink::enabled();
        let t = txn(7, 3);
        sink.record(10, 7, TraceEventKind::TxnBegin { txn: t });
        sink.record(
            11,
            7,
            TraceEventKind::OpStart {
                txn: t,
                kind: OpKind::Get,
            },
        );
        sink.record(
            15,
            7,
            TraceEventKind::OpEnd {
                txn: t,
                kind: OpKind::Get,
            },
        );
        sink.record(16, 7, TraceEventKind::OpRetry { txn: t });
        sink.record(
            16,
            7,
            TraceEventKind::OpStart {
                txn: t,
                kind: OpKind::Commit,
            },
        );
        sink.record(20, 7, TraceEventKind::TxnCommit { txn: t });
        let spans = spans(&sink.events());
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert!(s.is_complete());
        assert_eq!(s.outcome, "commit");
        assert_eq!(s.begin_us, 10);
        assert_eq!(s.end_us, Some(20));
        assert_eq!(s.retries, 1);
        assert_eq!(s.ops.len(), 2);
        assert_eq!(s.ops[0].kind, OpKind::Get);
        assert_eq!(s.ops[0].end_us, Some(15));
        // The open commit op is closed by the txn resolution.
        assert_eq!(s.ops[1].kind, OpKind::Commit);
        assert_eq!(s.ops[1].end_us, Some(20));
    }

    #[test]
    fn abort_outcomes_distinguished() {
        let sink = TraceSink::enabled();
        sink.record(1, 1, TraceEventKind::TxnBegin { txn: txn(1, 0) });
        sink.record(
            2,
            1,
            TraceEventKind::TxnAbort {
                txn: txn(1, 0),
                internal: false,
            },
        );
        sink.record(3, 1, TraceEventKind::TxnBegin { txn: txn(1, 1) });
        sink.record(
            4,
            1,
            TraceEventKind::TxnAbandon {
                txn: txn(1, 1),
                indeterminate: true,
            },
        );
        sink.record(5, 1, TraceEventKind::TxnBegin { txn: txn(1, 2) });
        let spans = spans(&sink.events());
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].outcome, "abort-external");
        assert_eq!(spans[1].outcome, "indeterminate");
        assert_eq!(spans[2].outcome, "open");
        assert!(!spans[2].is_complete());
    }

    #[test]
    fn chrome_json_shape() {
        let sink = TraceSink::enabled();
        let t = txn(2, 0);
        sink.record(100, 2, TraceEventKind::TxnBegin { txn: t });
        sink.record(
            101,
            2,
            TraceEventKind::OpStart {
                txn: t,
                kind: OpKind::Put,
            },
        );
        sink.record(
            109,
            2,
            TraceEventKind::OpEnd {
                txn: t,
                kind: OpKind::Put,
            },
        );
        sink.record(110, 2, TraceEventKind::TxnCommit { txn: t });
        sink.record(50, 0, TraceEventKind::Crash);
        sink.record(
            60,
            0,
            TraceEventKind::FaultBegin {
                desc: "partition va/or".into(),
            },
        );
        let json = sink.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"txn 2:0\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"put\""));
        assert!(json.contains("\"name\":\"crash\""));
        assert!(json.contains("fault-begin partition va/or"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn window_flags_faults() {
        let sink = TraceSink::enabled();
        let t = txn(3, 0);
        sink.record(10, 3, TraceEventKind::TxnBegin { txn: t });
        sink.record(
            12,
            0,
            TraceEventKind::FaultBegin {
                desc: "crash n0".into(),
            },
        );
        sink.record(
            30,
            3,
            TraceEventKind::TxnAbort {
                txn: t,
                internal: false,
            },
        );
        sink.record(500, 3, TraceEventKind::TxnBegin { txn: txn(3, 1) });
        let text = format_txn_window(&sink.events(), t, 5);
        assert!(text.contains("txn 3:0 on n3 [abort-external]"));
        assert!(text.contains("!!"));
        assert!(text.contains("crash n0"));
        assert!(!text.contains("500us"));
        assert!(text.contains("3 events"));
    }

    #[test]
    fn canonical_projection_strips_timing() {
        let a = TraceSink::enabled();
        let b = TraceSink::enabled();
        // Same lifecycle, wildly different timestamps and extra noise.
        for (sink, base) in [(&a, 10u64), (&b, 9000u64)] {
            sink.record(base, 1, TraceEventKind::TxnBegin { txn: txn(1, 0) });
            sink.record(
                base + 1,
                0,
                TraceEventKind::MsgSend {
                    from: 1,
                    to: 0,
                    label: "Put",
                    bytes: 32,
                },
            );
            sink.record(base + 7, 1, TraceEventKind::TxnCommit { txn: txn(1, 0) });
        }
        assert_eq!(a.canonical_projection(), b.canonical_projection());
        assert_ne!(a.events(), b.events());
    }

    #[test]
    fn take_events_drains() {
        let sink = TraceSink::enabled();
        sink.record(1, 0, TraceEventKind::Crash);
        assert_eq!(sink.take_events().len(), 1);
        assert!(sink.is_empty());
    }
}
