//! Property-based tests for the simulator's invariants.

use hat_sim::{
    percentile, Actor, Ctx, Engine, EngineConfig, Histogram, LatencyModel, NodeId, Partition,
    PartitionSchedule, Region, SimDuration, SimTime, Site, Topology,
};
use proptest::prelude::*;

/// An actor that relays each received token to a fixed next hop,
/// recording the times at which it held the token.
struct Relay {
    next: NodeId,
    hops_left: u32,
    seen: Vec<SimTime>,
}

impl Actor for Relay {
    type Msg = ();
    fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, _from: NodeId, _msg: ()) {
        self.seen.push(ctx.now());
        if self.hops_left > 0 {
            self.hops_left -= 1;
            ctx.send(self.next, ());
        }
    }
}

fn ring(n: usize, seed: u64, partitions: PartitionSchedule) -> Engine<Relay> {
    let mut topo = Topology::new();
    let regions = [
        Region::Virginia,
        Region::Oregon,
        Region::Ireland,
        Region::Tokyo,
    ];
    for i in 0..n {
        topo.add_node(Site::new(regions[i % regions.len()], (i % 3) as u8));
    }
    let actors = (0..n)
        .map(|i| Relay {
            next: ((i + 1) % n) as NodeId,
            hops_left: 64,
            seen: Vec::new(),
        })
        .collect();
    let cfg = EngineConfig {
        seed,
        partitions,
        ..EngineConfig::default()
    };
    Engine::new(cfg, topo, actors)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Simulated time never runs backwards, for arbitrary seeds and ring
    /// sizes, and identical seeds give identical traces.
    #[test]
    fn time_is_monotone_and_deterministic(seed in 0u64..5000, n in 2usize..8) {
        let run = |seed| {
            let mut e = ring(n, seed, PartitionSchedule::none());
            e.with_actor_ctx(0, |_a, ctx| ctx.send(1 % n as NodeId, ()));
            e.run_to_quiescence();
            (0..n).map(|i| e.actor(i as NodeId).seen.clone()).collect::<Vec<_>>()
        };
        let a = run(seed);
        for times in &a {
            for w in times.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }
        prop_assert_eq!(a, run(seed));
    }

    /// A total partition between two halves stops all cross-half
    /// delivery during its window.
    #[test]
    fn partitions_block_exactly_the_cut(seed in 0u64..1000) {
        let n = 6usize;
        // partition nodes {0,1,2} from {3,4,5} forever
        let schedule = PartitionSchedule::from_partitions(vec![Partition::forever(
            SimTime::ZERO,
            [0u32, 1, 2],
            [3u32, 4, 5],
        )]);
        let mut e = ring(n, seed, schedule);
        e.with_actor_ctx(0, |_a, ctx| ctx.send(1, ()));
        e.run_to_quiescence();
        // the token moves 0->1->2 then dies at the cut (2->3 dropped)
        prop_assert!(!e.actor(1).seen.is_empty());
        prop_assert!(!e.actor(2).seen.is_empty());
        for i in 3..6 {
            prop_assert!(e.actor(i).seen.is_empty(), "node {i} crossed the cut");
        }
        prop_assert!(e.net_stats().dropped >= 1);
    }

    /// Latency samples are strictly positive and the histogram's
    /// quantiles are monotone in q.
    #[test]
    fn latency_and_histogram_sanity(seed in 0u64..5000) {
        use rand::SeedableRng;
        let model = LatencyModel::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut h = Histogram::for_latency_ms();
        for _ in 0..200 {
            let s = model.sample_rtt_ms(
                hat_sim::LinkClass::CrossRegion(hat_sim::RegionPair(
                    Region::Virginia,
                    Region::Oregon,
                )),
                &mut rng,
            );
            prop_assert!(s > 0.0);
            h.record(s);
        }
        let qs = [0.1, 0.5, 0.9, 0.99];
        for w in qs.windows(2) {
            prop_assert!(h.quantile(w[0]) <= h.quantile(w[1]));
        }
    }

    /// percentile() of a sorted vector is an element of it and monotone.
    #[test]
    fn percentile_properties(mut xs in proptest::collection::vec(0.0f64..1e6, 1..200), q in 0.0f64..1.0) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p = percentile(&xs, q);
        prop_assert!(xs.contains(&p));
        prop_assert!(percentile(&xs, 0.0) <= p && p <= percentile(&xs, 1.0));
    }

    /// Engine ordering: messages sent with `send_after` never arrive
    /// before their hold elapses.
    #[test]
    fn send_after_holds_messages(hold_ms in 1u64..500) {
        struct Holder { hold: SimDuration, got_at: Option<SimTime> }
        impl Actor for Holder {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                if ctx.self_id == 0 {
                    ctx.send_after(self.hold, 1, ());
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, _f: NodeId, _m: ()) {
                self.got_at = Some(ctx.now());
            }
        }
        let mut topo = Topology::new();
        topo.add_node(Site::new(Region::Virginia, 0));
        topo.add_node(Site::new(Region::Virginia, 0));
        let hold = SimDuration::from_millis(hold_ms);
        let mut e = Engine::new(
            EngineConfig::default(),
            topo,
            vec![
                Holder { hold, got_at: None },
                Holder { hold, got_at: None },
            ],
        );
        e.run_to_quiescence();
        let got = e.actor(1).got_at.expect("delivered");
        prop_assert!(got >= SimTime::ZERO + hold, "arrived {got} before hold {hold}");
    }
}
