//! The simulation event queue.
//!
//! Events are totally ordered by `(time, sequence number)`: ties in
//! simulated time are broken by insertion order, which keeps runs
//! deterministic regardless of heap internals.

use crate::time::SimTime;
use crate::topology::NodeId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier of a pending timer, unique within a run.
pub type TimerSeq = u64;

/// A scheduled simulation event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event<M> {
    /// Delivery of message `msg` from node `from` to node `to`.
    Deliver { to: NodeId, from: NodeId, msg: M },
    /// A timer set by `node` fires; `timer` is the id returned at set
    /// time. `gen` is the node's incarnation when the timer was set: a
    /// timer armed before a crash must not fire into the restarted
    /// incarnation.
    TimerFire {
        node: NodeId,
        timer: TimerSeq,
        gen: u64,
    },
}

struct Entry<M> {
    time: SimTime,
    seq: u64,
    event: Event<M>,
}

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Entry<M> {}
impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-queue of [`Event`]s ordered by time then insertion.
pub struct EventQueue<M> {
    heap: BinaryHeap<Entry<M>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at `time`. Events at equal times pop in insertion
    /// order.
    pub fn push(&mut self, time: SimTime, event: Event<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event<M>)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.push(
            SimTime::from_millis(5),
            Event::TimerFire {
                node: 0,
                timer: 0,
                gen: 0,
            },
        );
        q.push(
            SimTime::from_millis(1),
            Event::TimerFire {
                node: 1,
                timer: 1,
                gen: 0,
            },
        );
        q.push(
            SimTime::from_millis(3),
            Event::Deliver {
                to: 2,
                from: 0,
                msg: (),
            },
        );
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_micros())
            .collect();
        assert_eq!(order, vec![1_000, 3_000, 5_000]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q: EventQueue<()> = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..10u64 {
            q.push(
                t,
                Event::TimerFire {
                    node: 0,
                    timer: i,
                    gen: 0,
                },
            );
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::TimerFire { timer, .. } => timer,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(popped, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(
            SimTime::from_millis(2),
            Event::TimerFire {
                node: 0,
                timer: 0,
                gen: 0,
            },
        );
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
        assert_eq!(q.len(), 1);
    }
}
