//! Node placement: regions, availability zones and sites.
//!
//! The paper's measurement study (§2.2) distinguishes three scales of
//! communication: within an availability zone, across availability zones of
//! the same region, and across regions. A [`Site`] captures where a node
//! lives; the [`Topology`] maps node ids to sites so the latency model can
//! classify every link.

use crate::latency::Region;
use serde::{Deserialize, Serialize};

/// Identifier of a simulated node (server or client).
pub type NodeId = u32;

/// Physical placement of a node: a region plus an availability zone index
/// within that region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Site {
    /// Geographic region (EC2 region in the paper's terms).
    pub region: Region,
    /// Availability-zone index within the region (datacenter).
    pub az: u8,
}

impl Site {
    /// A site in availability zone 0 of `region`.
    pub fn new(region: Region, az: u8) -> Self {
        Site { region, az }
    }
}

/// Maps every node to its site.
///
/// Node ids are dense (`0..len`), assigned in the order sites are pushed.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    sites: Vec<Site>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology { sites: Vec::new() }
    }

    /// Adds a node at `site`, returning its id.
    pub fn add_node(&mut self, site: Site) -> NodeId {
        let id = self.sites.len() as NodeId;
        self.sites.push(site);
        id
    }

    /// Adds `n` nodes at `site`, returning their ids.
    pub fn add_nodes(&mut self, site: Site, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node(site)).collect()
    }

    /// The site of node `id`.
    ///
    /// # Panics
    /// Panics if `id` was never added.
    pub fn site(&self, id: NodeId) -> Site {
        self.sites[id as usize]
    }

    /// Number of nodes in the topology.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True if no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Iterates over `(id, site)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Site)> + '_ {
        self.sites
            .iter()
            .enumerate()
            .map(|(i, s)| (i as NodeId, *s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_ids_in_insertion_order() {
        let mut t = Topology::new();
        let a = t.add_node(Site::new(Region::Virginia, 0));
        let b = t.add_node(Site::new(Region::Oregon, 1));
        assert_eq!((a, b), (0, 1));
        assert_eq!(t.site(a).region, Region::Virginia);
        assert_eq!(t.site(b).az, 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn add_nodes_bulk() {
        let mut t = Topology::new();
        let ids = t.add_nodes(Site::new(Region::Ireland, 2), 5);
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(ids.iter().all(|&i| t.site(i).az == 2));
        assert!(!t.is_empty());
    }

    #[test]
    fn iter_yields_all() {
        let mut t = Topology::new();
        t.add_nodes(Site::new(Region::Tokyo, 0), 3);
        let collected: Vec<_> = t.iter().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[2].0, 2);
    }
}
