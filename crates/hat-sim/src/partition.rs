//! Network partition schedules.
//!
//! The CAP-style availability arguments of the paper (§4, §5.2) hinge on
//! *arbitrary, indefinitely long* partitions between servers. Here a
//! partition is explicit data: a time window during which messages crossing
//! a node-set boundary are dropped. Schedules compose, so experiments can
//! express flapping links, isolated datacenters, or a single stranded
//! client.

use crate::time::SimTime;
use crate::topology::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A single partition event: during `[start, end)` no message may cross
/// between `side_a` and `side_b` (in either direction — or, when
/// `one_way` is set, only from `side_a` toward `side_b`).
///
/// Nodes listed on neither side are unaffected by this partition. `end`
/// may be [`SimTime`]`(u64::MAX)` to model an indefinite partition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Partition {
    /// First instant at which the partition is active.
    pub start: SimTime,
    /// First instant at which the partition has healed.
    pub end: SimTime,
    /// One side of the cut.
    pub side_a: BTreeSet<NodeId>,
    /// The other side of the cut.
    pub side_b: BTreeSet<NodeId>,
    /// When set, only `side_a → side_b` traffic is cut; replies still
    /// flow `side_b → side_a`. Models asymmetric link failures (a common
    /// real-world failure mode nemesis schedules exercise).
    pub one_way: bool,
}

impl Partition {
    /// Builds a partition separating `a` from `b` during `[start, end)`.
    pub fn new(
        start: SimTime,
        end: SimTime,
        a: impl IntoIterator<Item = NodeId>,
        b: impl IntoIterator<Item = NodeId>,
    ) -> Self {
        Partition {
            start,
            end,
            side_a: a.into_iter().collect(),
            side_b: b.into_iter().collect(),
            one_way: false,
        }
    }

    /// Builds an asymmetric partition: during `[start, end)` messages
    /// from `from_side` toward `to_side` are dropped, while the reverse
    /// direction stays healthy.
    pub fn one_way(
        start: SimTime,
        end: SimTime,
        from_side: impl IntoIterator<Item = NodeId>,
        to_side: impl IntoIterator<Item = NodeId>,
    ) -> Self {
        Partition {
            start,
            end,
            side_a: from_side.into_iter().collect(),
            side_b: to_side.into_iter().collect(),
            one_way: true,
        }
    }

    /// A partition lasting from `start` forever (never heals).
    pub fn forever(
        start: SimTime,
        a: impl IntoIterator<Item = NodeId>,
        b: impl IntoIterator<Item = NodeId>,
    ) -> Self {
        Self::new(start, SimTime(u64::MAX), a, b)
    }

    /// True if a message sent from `from` to `to` at time `t` crosses this
    /// partition while it is active.
    pub fn blocks(&self, from: NodeId, to: NodeId, t: SimTime) -> bool {
        if t < self.start || t >= self.end {
            return false;
        }
        let a_to_b = self.side_a.contains(&from) && self.side_b.contains(&to);
        if self.one_way {
            return a_to_b;
        }
        a_to_b || (self.side_b.contains(&from) && self.side_a.contains(&to))
    }
}

/// A set of partitions active over a run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PartitionSchedule {
    partitions: Vec<Partition>,
}

impl PartitionSchedule {
    /// A schedule with no partitions (a healthy network).
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds a partition to the schedule.
    pub fn add(&mut self, p: Partition) -> &mut Self {
        self.partitions.push(p);
        self
    }

    /// Builds a schedule from a list of partitions.
    pub fn from_partitions(partitions: Vec<Partition>) -> Self {
        PartitionSchedule { partitions }
    }

    /// True if any active partition blocks `from → to` at `t`.
    pub fn blocks(&self, from: NodeId, to: NodeId, t: SimTime) -> bool {
        self.partitions.iter().any(|p| p.blocks(from, to, t))
    }

    /// Number of partition events in the schedule.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// True if the schedule contains no partitions.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn blocks_both_directions_within_window() {
        let p = Partition::new(t(10), t(20), [0, 1], [2, 3]);
        assert!(p.blocks(0, 2, t(10)));
        assert!(p.blocks(3, 1, t(15)));
        assert!(!p.blocks(0, 2, t(9)));
        assert!(!p.blocks(0, 2, t(20))); // end is exclusive
    }

    #[test]
    fn unrelated_nodes_unaffected() {
        let p = Partition::new(t(0), t(100), [0], [1]);
        assert!(!p.blocks(0, 5, t(50)));
        assert!(!p.blocks(5, 6, t(50)));
        // same side communicates freely
        assert!(!p.blocks(0, 0, t(50)));
    }

    #[test]
    fn forever_never_heals() {
        let p = Partition::forever(t(5), [0], [1]);
        assert!(p.blocks(0, 1, SimTime(u64::MAX - 1)));
        assert!(!p.blocks(0, 1, t(4)));
    }

    #[test]
    fn one_way_blocks_single_direction() {
        let p = Partition::one_way(t(10), t(20), [0, 1], [2, 3]);
        // a → b is cut…
        assert!(p.blocks(0, 2, t(10)));
        assert!(p.blocks(1, 3, t(15)));
        // …but b → a flows (the asymmetry under test)
        assert!(!p.blocks(2, 0, t(15)));
        assert!(!p.blocks(3, 1, t(15)));
        // window edges behave like the symmetric case
        assert!(!p.blocks(0, 2, t(9)));
        assert!(!p.blocks(0, 2, t(20)));
        // unrelated nodes unaffected
        assert!(!p.blocks(0, 7, t(15)));
        assert!(!p.blocks(7, 2, t(15)));
    }

    #[test]
    fn one_way_composes_into_symmetric_cut() {
        // Two opposing one-way partitions behave like one symmetric cut.
        let mut s = PartitionSchedule::none();
        s.add(Partition::one_way(t(0), t(10), [0], [1]));
        s.add(Partition::one_way(t(0), t(10), [1], [0]));
        assert!(s.blocks(0, 1, t(5)));
        assert!(s.blocks(1, 0, t(5)));
        assert!(!s.blocks(0, 1, t(10)));
    }

    #[test]
    fn schedule_composes_partitions() {
        let mut s = PartitionSchedule::none();
        assert!(s.is_empty());
        s.add(Partition::new(t(0), t(10), [0], [1]));
        s.add(Partition::new(t(20), t(30), [0], [2]));
        assert_eq!(s.len(), 2);
        assert!(s.blocks(0, 1, t(5)));
        assert!(!s.blocks(0, 1, t(15)));
        assert!(s.blocks(2, 0, t(25)));
        assert!(!s.blocks(1, 2, t(25)));
    }
}
