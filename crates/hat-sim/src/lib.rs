//! Deterministic discrete-event network simulator for HAT experiments.
//!
//! The HAT paper ([Bailis et al., VLDB 2013]) evaluates its prototype on
//! Amazon EC2 across seven geographic regions. This crate replaces that
//! testbed with a deterministic, seeded simulation:
//!
//! * [`time`] — a microsecond-resolution logical clock ([`SimTime`]).
//! * [`event`] — the ordered event queue driving the simulation.
//! * [`latency`] — round-trip latency models calibrated to the paper's
//!   published EC2 measurements (Table 1a/b/c), including log-normal tails
//!   for reproducing the CDFs of Figure 1.
//! * [`partition`] — explicit network partition schedules; partitions are
//!   first-class data so impossibility results (§5.2) can be exercised
//!   deterministically.
//! * [`topology`] — sites (region + availability zone) and node placement.
//! * [`engine`] — the simulation engine: actors exchange messages and
//!   timers; delivery latency is drawn from the latency model and messages
//!   crossing an active partition are dropped.
//! * [`stats`] — summary statistics (mean/percentiles/CDF, log-scaled
//!   histograms) shared by the benchmark harness.
//!
//! Everything is deterministic given a seed: two runs with identical
//! configuration produce identical histories, which the test suite relies
//! on heavily.
//!
//! [Bailis et al., VLDB 2013]: https://arxiv.org/abs/1302.0309

pub mod engine;
pub mod event;
pub mod latency;
pub mod partition;
pub mod stats;
pub mod time;
pub mod topology;

pub use engine::{
    Actor, Ctx, Engine, EngineConfig, NetHop, NetStats, NetTracer, NodeFaultStats, TimerId,
};
pub use event::{Event, EventQueue};
pub use latency::{LatencyModel, LinkClass, Region, RegionPair, ALL_REGIONS};
pub use partition::{Partition, PartitionSchedule};
pub use stats::{percentile, Histogram, LatencyPercentiles, Summary};
pub use time::{SimDuration, SimTime};
pub use topology::{NodeId, Site, Topology};
