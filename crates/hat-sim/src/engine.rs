//! The discrete-event simulation engine.
//!
//! Nodes implement [`Actor`] and interact with the world exclusively
//! through a [`Ctx`]: reading the clock, sending messages, setting timers,
//! and drawing randomness from the engine's seeded RNG. The engine pops
//! events in deterministic `(time, insertion)` order, applies the latency
//! model to every send, and drops messages that cross an active partition
//! — exactly the fault model assumed by the paper's availability
//! definitions (a partitioned server never hears from the other side, and
//! nothing tells the sender).

use crate::event::{Event, EventQueue};
use crate::latency::LatencyModel;
use crate::partition::PartitionSchedule;
use crate::time::{SimDuration, SimTime};
use crate::topology::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Tag identifying a timer to the actor that set it. Tags are chosen by
/// the actor (they need not be unique); a periodic task typically reuses
/// one tag.
pub type TimerId = u64;

/// A simulated node: a deterministic state machine reacting to messages
/// and timers.
pub trait Actor {
    /// Message type exchanged between actors of this simulation.
    type Msg;

    /// Invoked once before any event is processed; typically used to set
    /// initial timers or send bootstrap messages.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}

    /// Invoked when a message from `from` is delivered to this actor.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Invoked when a timer set through [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self::Msg>, _timer: TimerId) {}
}

/// The actor's handle to the simulation during a callback.
pub struct Ctx<'a, M> {
    /// Id of the actor being invoked.
    pub self_id: NodeId,
    now: SimTime,
    clock_offset: i64,
    rng: &'a mut StdRng,
    outbox: Vec<(SimDuration, NodeId, M)>,
    timer_requests: Vec<(SimDuration, TimerId)>,
}

impl<'a, M> Ctx<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node's *local* wall clock: true simulated time shifted by the
    /// node's clock offset (see [`Engine::set_clock_offset`]). Event
    /// ordering, timers and service holds always use the true clock
    /// ([`Ctx::now`]); `local_now` is what a node would report if asked
    /// for the time — the hook nemesis clock-skew schedules perturb.
    /// HAT guarantees are clock-free, so skewing this must never change
    /// a run's outcome.
    pub fn local_now(&self) -> SimTime {
        let t = self.now.as_micros() as i64;
        SimTime(t.saturating_add(self.clock_offset).max(0) as u64)
    }

    /// Sends `msg` to `to`. Delivery latency is drawn from the latency
    /// model; the message is silently dropped if a partition separates the
    /// two nodes at send time.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((SimDuration::ZERO, to, msg));
    }

    /// Sends `msg` to `to` after a local processing delay of `hold` —
    /// used to model server service time (the reply leaves the node once
    /// the request has been processed). Network latency and partition
    /// checks apply on top of `hold`, evaluated at the *release* time.
    pub fn send_after(&mut self, hold: SimDuration, to: NodeId, msg: M) {
        self.outbox.push((hold, to, msg));
    }

    /// Schedules a timer to fire after `delay`; `tag` is returned to
    /// [`Actor::on_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, tag: TimerId) {
        self.timer_requests.push((delay, tag));
    }

    /// The engine's deterministic RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Builds a detached context for external runtimes (e.g. the
    /// threaded runtime): the caller supplies the clock and RNG and
    /// collects the outputs with [`Ctx::into_outputs`] after the actor
    /// callback returns.
    pub fn detached(self_id: NodeId, now: SimTime, rng: &'a mut StdRng) -> Self {
        Ctx {
            self_id,
            now,
            clock_offset: 0,
            rng,
            outbox: Vec::new(),
            timer_requests: Vec::new(),
        }
    }

    /// Consumes the context, returning `(sends, timers)`: each send is
    /// `(hold, to, msg)` and each timer `(delay, tag)`.
    #[allow(clippy::type_complexity)]
    pub fn into_outputs(self) -> (Vec<(SimDuration, NodeId, M)>, Vec<(SimDuration, TimerId)>) {
        (self.outbox, self.timer_requests)
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Seed for the engine RNG; identical seeds give identical runs.
    pub seed: u64,
    /// Latency model applied to every message.
    pub latency: LatencyModel,
    /// Partition schedule; messages crossing an active cut are dropped.
    pub partitions: PartitionSchedule,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 0xEC2_CAFE,
            latency: LatencyModel::default(),
            partitions: PartitionSchedule::none(),
        }
    }
}

/// Counters describing what the network did during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the network.
    pub sent: u64,
    /// Messages delivered to their destination.
    pub delivered: u64,
    /// Messages dropped by an active partition (or addressed to a
    /// crashed node).
    pub dropped: u64,
}

/// Per-node fault bookkeeping: crash state, incarnation, clock skew and
/// drop counters attributed to the node as message *destination*.
#[derive(Debug, Clone, Copy, Default)]
struct NodeFault {
    crashed: bool,
    /// Incarnation count; bumped on every restart so timers armed by a
    /// previous incarnation never fire into the new one.
    gen: u64,
    /// Local wall-clock offset in microseconds (may be negative).
    clock_offset: i64,
    dropped_by_partition: u64,
    dropped_by_crash: u64,
    crashes: u64,
}

/// Snapshot of one node's fault counters (see [`Engine::fault_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeFaultStats {
    /// Messages destined to this node dropped by an active partition.
    pub dropped_by_partition: u64,
    /// Messages destined to this node dropped because it was crashed at
    /// delivery time.
    pub dropped_by_crash: u64,
    /// Times this node has been crashed.
    pub crashes: u64,
}

/// What happened to a message at a network hop, as seen by a
/// [`NetTracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetHop {
    /// The message left the sender (before latency sampling).
    Send,
    /// The message reached a live destination actor.
    Deliver,
    /// An active partition dropped the message at send time.
    DropPartition,
    /// The destination was crashed at delivery time.
    DropCrash,
}

/// Observer hook for network activity: `(now, from, to, msg, hop)`.
///
/// The engine stays trace-agnostic — callers (e.g. `hat-core`'s
/// deployment builder) install a closure that translates messages into
/// whatever event vocabulary they use. The hook is called *outside* all
/// rng use: it observes, it must never perturb determinism.
pub type NetTracer<M> = Box<dyn FnMut(SimTime, NodeId, NodeId, &M, NetHop)>;

/// The simulation engine: owns the actors, the clock, the event queue and
/// the network model.
pub struct Engine<A: Actor> {
    topology: Topology,
    actors: Vec<A>,
    queue: EventQueue<A::Msg>,
    now: SimTime,
    rng: StdRng,
    config: EngineConfig,
    stats: NetStats,
    faults: Vec<NodeFault>,
    /// Multiplier applied to sampled cross-node latency — the latency-
    /// spike fault. 1.0 is the healthy network.
    latency_factor: f64,
    started: bool,
    net_tracer: Option<NetTracer<A::Msg>>,
}

impl<A: Actor> Engine<A> {
    /// Creates an engine over `actors`, whose indices must match the node
    /// ids assigned by `topology`.
    ///
    /// # Panics
    /// Panics if `actors.len() != topology.len()`.
    pub fn new(config: EngineConfig, topology: Topology, actors: Vec<A>) -> Self {
        assert_eq!(
            actors.len(),
            topology.len(),
            "one actor required per topology node"
        );
        let rng = StdRng::seed_from_u64(config.seed);
        let faults = vec![NodeFault::default(); actors.len()];
        Engine {
            topology,
            actors,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng,
            config,
            stats: NetStats::default(),
            faults,
            latency_factor: 1.0,
            started: false,
            net_tracer: None,
        }
    }

    /// Installs a [`NetTracer`] observing every send, delivery and drop.
    /// The tracer runs outside all rng sampling, so installing one (or
    /// not) never changes a seeded run's schedule.
    pub fn set_net_tracer(
        &mut self,
        tracer: impl FnMut(SimTime, NodeId, NodeId, &A::Msg, NetHop) + 'static,
    ) {
        self.net_tracer = Some(Box::new(tracer));
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Network statistics so far.
    pub fn net_stats(&self) -> NetStats {
        self.stats
    }

    /// Mutable access to the partition schedule — nemesis schedules
    /// inject and heal cuts mid-run through this.
    pub fn partitions_mut(&mut self) -> &mut PartitionSchedule {
        &mut self.config.partitions
    }

    /// Sets the latency multiplier applied to every cross-node message
    /// from now on (latency-spike fault; 1.0 restores the healthy
    /// network). Sampling still consumes the same rng stream, so toggling
    /// the factor never reshuffles an otherwise-identical run.
    pub fn set_latency_factor(&mut self, factor: f64) {
        self.latency_factor = if factor.is_finite() && factor > 0.0 {
            factor
        } else {
            1.0
        };
    }

    /// Sets `node`'s local wall-clock offset in microseconds (clock-skew
    /// fault). Only [`Ctx::local_now`] observes the offset; the true
    /// event clock is unaffected, so runs stay bit-identical per seed.
    pub fn set_clock_offset(&mut self, node: NodeId, offset_us: i64) {
        self.faults[node as usize].clock_offset = offset_us;
    }

    /// Fault counters attributed to `node`.
    pub fn fault_stats(&self, node: NodeId) -> NodeFaultStats {
        let f = &self.faults[node as usize];
        NodeFaultStats {
            dropped_by_partition: f.dropped_by_partition,
            dropped_by_crash: f.dropped_by_crash,
            crashes: f.crashes,
        }
    }

    /// True while `node` is crashed (between [`Engine::crash`] and
    /// [`Engine::restart_with`]).
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.faults[node as usize].crashed
    }

    /// Crashes `node`: from now until restart, messages addressed to it
    /// are dropped at delivery time and its pending timers are
    /// discarded. The actor's in-memory state stays in place but is
    /// never invoked again — [`Engine::restart_with`] replaces it
    /// wholesale, which is where recovery-from-durable-state happens.
    ///
    /// # Panics
    /// Panics if `node` is already crashed.
    pub fn crash(&mut self, node: NodeId) {
        let f = &mut self.faults[node as usize];
        assert!(!f.crashed, "node {node} is already crashed");
        f.crashed = true;
        f.crashes += 1;
    }

    /// Restarts a crashed `node` with a fresh actor (typically rebuilt
    /// from recovered durable state). The node's incarnation is bumped —
    /// timers armed before the crash never fire into the new actor — and
    /// the new actor's `on_start` runs immediately, as on boot.
    ///
    /// # Panics
    /// Panics if `node` is not crashed.
    pub fn restart_with(&mut self, node: NodeId, actor: A) {
        let f = &mut self.faults[node as usize];
        assert!(f.crashed, "restart_with requires a crashed node");
        f.crashed = false;
        f.gen += 1;
        self.actors[node as usize] = actor;
        if self.started {
            self.invoke(node, |actor, ctx| actor.on_start(ctx));
        }
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Immutable access to an actor.
    pub fn actor(&self, id: NodeId) -> &A {
        &self.actors[id as usize]
    }

    /// Mutable access to an actor (for inspection or test injection
    /// between runs; mutations take effect before the next event).
    pub fn actor_mut(&mut self, id: NodeId) -> &mut A {
        &mut self.actors[id as usize]
    }

    /// The node topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for id in 0..self.actors.len() as NodeId {
            self.invoke(id, |actor, ctx| actor.on_start(ctx));
        }
    }

    /// Runs a single actor callback, then routes its outputs.
    fn invoke(&mut self, id: NodeId, f: impl FnOnce(&mut A, &mut Ctx<'_, A::Msg>)) {
        let gen = self.faults[id as usize].gen;
        let mut ctx = Ctx {
            self_id: id,
            now: self.now,
            clock_offset: self.faults[id as usize].clock_offset,
            rng: &mut self.rng,
            outbox: Vec::new(),
            timer_requests: Vec::new(),
        };
        f(&mut self.actors[id as usize], &mut ctx);
        let Ctx {
            outbox,
            timer_requests,
            ..
        } = ctx;
        for (hold, to, msg) in outbox {
            self.route(id, to, msg, hold);
        }
        for (delay, tag) in timer_requests {
            self.queue.push(
                self.now + delay,
                Event::TimerFire {
                    node: id,
                    timer: tag,
                    gen,
                },
            );
        }
    }

    fn route(&mut self, from: NodeId, to: NodeId, msg: A::Msg, hold: SimDuration) {
        self.stats.sent += 1;
        let release = self.now + hold;
        if self.config.partitions.blocks(from, to, release) {
            self.stats.dropped += 1;
            self.faults[to as usize].dropped_by_partition += 1;
            if let Some(t) = self.net_tracer.as_mut() {
                t(self.now, from, to, &msg, NetHop::DropPartition);
            }
            return;
        }
        if let Some(t) = self.net_tracer.as_mut() {
            t(self.now, from, to, &msg, NetHop::Send);
        }
        let latency = if from == to {
            SimDuration::from_micros((self.config.latency.local_rtt_ms * 500.0) as u64)
        } else {
            let a = self.topology.site(from);
            let b = self.topology.site(to);
            let sampled = self.config.latency.sample_one_way(a, b, &mut self.rng);
            if self.latency_factor != 1.0 {
                SimDuration::from_micros((sampled.as_micros() as f64 * self.latency_factor) as u64)
            } else {
                sampled
            }
        };
        self.queue
            .push(release + latency, Event::Deliver { to, from, msg });
    }

    /// Invokes a callback on actor `id` with a full [`Ctx`], outside of
    /// any event. Messages sent and timers set by the callback are routed
    /// exactly as from an event handler. This is the entry point external
    /// drivers (the transaction facade, tests) use to inject work.
    pub fn with_actor_ctx<R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut A, &mut Ctx<'_, A::Msg>) -> R,
    ) -> R {
        self.ensure_started();
        let mut out = None;
        self.invoke(id, |actor, ctx| out = Some(f(actor, ctx)));
        out.expect("callback always runs")
    }

    /// Processes the next event, if any. Returns `false` when the queue is
    /// exhausted.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let Some((time, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now, "time must not run backwards");
        self.now = time;
        match event {
            Event::Deliver { to, from, msg } => {
                // A message in flight toward a crashed node is lost at
                // delivery time (the kernel that would have received it
                // is gone). Messages sent before the crash but arriving
                // after a restart are delivered — that's a delayed
                // packet, which real networks produce too.
                if self.faults[to as usize].crashed {
                    self.stats.dropped += 1;
                    self.faults[to as usize].dropped_by_crash += 1;
                    if let Some(t) = self.net_tracer.as_mut() {
                        t(self.now, from, to, &msg, NetHop::DropCrash);
                    }
                    return true;
                }
                self.stats.delivered += 1;
                if let Some(t) = self.net_tracer.as_mut() {
                    t(self.now, from, to, &msg, NetHop::Deliver);
                }
                self.invoke(to, |actor, ctx| actor.on_message(ctx, from, msg));
            }
            Event::TimerFire { node, timer, gen } => {
                // Timers die with their incarnation: swallowed while the
                // node is down, and never delivered to a later
                // incarnation (the restart's `on_start` arms its own).
                if self.faults[node as usize].crashed || self.faults[node as usize].gen != gen {
                    return true;
                }
                self.invoke(node, |actor, ctx| actor.on_timer(ctx, timer));
            }
        }
        true
    }

    /// Runs until the queue is empty or simulated time would exceed
    /// `deadline`; events scheduled after `deadline` stay queued and the
    /// clock is advanced to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.ensure_started();
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `d` of simulated time from the current clock.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Runs until no events remain (use only for workloads that quiesce).
    pub fn run_to_quiescence(&mut self) {
        self.ensure_started();
        while self.step() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::Region;
    use crate::partition::Partition;
    use crate::topology::Site;

    /// A ping-pong actor: node 0 starts, each node replies up to `budget`
    /// times, recording delivery times.
    struct PingPong {
        peer: NodeId,
        budget: u32,
        initiator: bool,
        deliveries: Vec<SimTime>,
    }

    impl Actor for PingPong {
        type Msg = u32;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if self.initiator {
                ctx.send(self.peer, 0);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
            self.deliveries.push(ctx.now());
            if msg < self.budget {
                ctx.send(from, msg + 1);
            }
        }
    }

    fn two_node_engine(config: EngineConfig) -> Engine<PingPong> {
        let mut topo = Topology::new();
        let a = topo.add_node(Site::new(Region::Virginia, 0));
        let b = topo.add_node(Site::new(Region::Oregon, 0));
        let actors = vec![
            PingPong {
                peer: b,
                budget: 10,
                initiator: true,
                deliveries: Vec::new(),
            },
            PingPong {
                peer: a,
                budget: 10,
                initiator: false,
                deliveries: Vec::new(),
            },
        ];
        Engine::new(config, topo, actors)
    }

    #[test]
    fn ping_pong_exchanges_messages_with_wan_latency() {
        let mut engine = two_node_engine(EngineConfig::default());
        engine.run_to_quiescence();
        // 11 messages total (0..=10), alternating delivery
        let total: usize = (0..2).map(|i| engine.actor(i).deliveries.len()).sum();
        assert_eq!(total, 11);
        // VA<->OR mean RTT is 82.9ms so one-way ~41ms; first delivery
        // should be in that ballpark (log-normal, generous bounds).
        let first = engine.actor(1).deliveries[0];
        assert!(
            first.as_millis_f64() > 5.0 && first.as_millis_f64() < 400.0,
            "first delivery at {first}"
        );
    }

    #[test]
    fn identical_seeds_identical_runs() {
        let run = |seed: u64| {
            let mut e = two_node_engine(EngineConfig {
                seed,
                ..EngineConfig::default()
            });
            e.run_to_quiescence();
            (
                e.actor(0).deliveries.clone(),
                e.actor(1).deliveries.clone(),
                e.now(),
            )
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).2, run(43).2, "different seeds should differ");
    }

    #[test]
    fn partition_drops_messages() {
        let cfg = EngineConfig {
            partitions: PartitionSchedule::from_partitions(vec![Partition::forever(
                SimTime::ZERO,
                [0],
                [1],
            )]),
            ..EngineConfig::default()
        };
        let mut engine = two_node_engine(cfg);
        engine.run_to_quiescence();
        assert_eq!(engine.actor(1).deliveries.len(), 0);
        let stats = engine.net_stats();
        assert_eq!(stats.sent, 1);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.delivered, 0);
    }

    #[test]
    fn healed_partition_allows_later_traffic() {
        struct Retry {
            peer: NodeId,
            got: u32,
        }
        impl Actor for Retry {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                // retry every 10ms, 20 times
                for i in 0..20 {
                    ctx.set_timer(SimDuration::from_millis(10 * (i + 1)), i);
                }
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _t: TimerId) {
                ctx.send(self.peer, ());
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _from: NodeId, _msg: ()) {
                self.got += 1;
            }
        }
        let mut topo = Topology::new();
        let a = topo.add_node(Site::new(Region::Virginia, 0));
        let b = topo.add_node(Site::new(Region::Virginia, 0));
        let cfg = EngineConfig {
            partitions: PartitionSchedule::from_partitions(vec![Partition::new(
                SimTime::ZERO,
                SimTime::from_millis(100),
                [a],
                [b],
            )]),
            ..EngineConfig::default()
        };
        let mut e = Engine::new(
            cfg,
            topo,
            vec![Retry { peer: b, got: 0 }, Retry { peer: a, got: 0 }],
        );
        e.run_to_quiescence();
        // sends at 10..=100ms blocked (end exclusive at exactly 100ms the
        // partition has healed), later ones delivered
        let got = e.actor(b).got;
        assert!((10..20).contains(&got), "got {got}");
        assert!(e.net_stats().dropped >= 9);
    }

    #[test]
    fn timers_fire_in_order_and_advance_clock() {
        struct T {
            fired: Vec<(TimerId, SimTime)>,
        }
        impl Actor for T {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimDuration::from_millis(30), 3);
                ctx.set_timer(SimDuration::from_millis(10), 1);
                ctx.set_timer(SimDuration::from_millis(20), 2);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, t: TimerId) {
                self.fired.push((t, ctx.now()));
            }
        }
        let mut topo = Topology::new();
        topo.add_node(Site::new(Region::Virginia, 0));
        let mut e = Engine::new(EngineConfig::default(), topo, vec![T { fired: vec![] }]);
        e.run_to_quiescence();
        let tags: Vec<TimerId> = e.actor(0).fired.iter().map(|f| f.0).collect();
        assert_eq!(tags, vec![1, 2, 3]);
        assert_eq!(e.actor(0).fired[2].1, SimTime::from_millis(30));
    }

    #[test]
    fn crashed_node_drops_deliveries_and_timers() {
        let mut engine = two_node_engine(EngineConfig::default());
        engine.run_until(SimTime::from_millis(1)); // started, ping in flight
        engine.crash(1);
        assert!(engine.is_crashed(1));
        engine.run_to_quiescence();
        // the initial ping was in flight toward node 1 when it crashed
        assert_eq!(engine.actor(1).deliveries.len(), 0);
        let f = engine.fault_stats(1);
        assert_eq!(f.crashes, 1);
        assert_eq!(f.dropped_by_crash, 1);
        assert_eq!(engine.net_stats().dropped, 1);
    }

    #[test]
    fn restart_runs_on_start_and_kills_stale_timers() {
        struct Beeper {
            beeps: u32,
            armed: bool,
        }
        impl Actor for Beeper {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                if self.armed {
                    ctx.set_timer(SimDuration::from_millis(100), 7);
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _t: TimerId) {
                self.beeps += 1;
                ctx.set_timer(SimDuration::from_millis(100), 7);
            }
        }
        let mut topo = Topology::new();
        topo.add_node(Site::new(Region::Virginia, 0));
        let mut e = Engine::new(
            EngineConfig::default(),
            topo,
            vec![Beeper {
                beeps: 0,
                armed: true,
            }],
        );
        e.run_until(SimTime::from_millis(250)); // beeps at 100, 200
        assert_eq!(e.actor(0).beeps, 2);
        e.crash(0);
        e.run_until(SimTime::from_millis(450)); // timer at 300 swallowed
                                                // restart with a disarmed beeper: the pre-crash timer chain must
                                                // NOT resume into the new incarnation
        e.restart_with(
            0,
            Beeper {
                beeps: 0,
                armed: false,
            },
        );
        e.run_until(SimTime::from_millis(1000));
        assert_eq!(e.actor(0).beeps, 0, "stale timer fired into restart");
        assert_eq!(e.fault_stats(0).crashes, 1);
    }

    #[test]
    fn clock_offset_shifts_local_now_only() {
        struct Sampler {
            seen: Vec<(SimTime, SimTime)>,
        }
        impl Actor for Sampler {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimDuration::from_millis(50), 1);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, _t: TimerId) {
                self.seen.push((ctx.now(), ctx.local_now()));
            }
        }
        let mut topo = Topology::new();
        topo.add_node(Site::new(Region::Virginia, 0));
        let mut e = Engine::new(
            EngineConfig::default(),
            topo,
            vec![Sampler { seen: vec![] }],
        );
        e.set_clock_offset(0, -20_000); // 20ms behind
        e.run_to_quiescence();
        let (now, local) = e.actor(0).seen[0];
        assert_eq!(now, SimTime::from_millis(50), "true clock unskewed");
        assert_eq!(local, SimTime::from_millis(30), "local clock skewed");
        // negative offsets clamp at zero rather than underflowing
        e.set_clock_offset(0, i64::MIN);
        e.with_actor_ctx(0, |_, ctx| assert_eq!(ctx.local_now(), SimTime::ZERO));
    }

    #[test]
    fn latency_factor_slows_delivery_without_consuming_extra_rng() {
        let run = |factor: f64| {
            let mut e = two_node_engine(EngineConfig::default());
            e.set_latency_factor(factor);
            e.run_to_quiescence();
            (e.now(), e.actor(1).deliveries[0])
        };
        let (end_1x, first_1x) = run(1.0);
        let (end_4x, first_4x) = run(4.0);
        assert!(first_4x > first_1x, "spike must slow the first delivery");
        assert!(end_4x > end_1x);
        // same seed, same number of rng draws: scaling preserves the
        // sampled sequence, so 4x is exactly 4x on the first hop
        assert_eq!(first_4x.as_micros(), first_1x.as_micros() * 4);
    }

    #[test]
    fn one_way_partition_drops_only_forward_traffic() {
        let cfg = EngineConfig {
            partitions: PartitionSchedule::from_partitions(vec![Partition::one_way(
                SimTime::ZERO,
                SimTime(u64::MAX),
                [0],
                [1],
            )]),
            ..EngineConfig::default()
        };
        let mut engine = two_node_engine(cfg);
        engine.run_to_quiescence();
        // node 0's opening ping is dropped; node 1 never replies because
        // it never hears anything — asymmetric silence
        assert_eq!(engine.actor(1).deliveries.len(), 0);
        assert_eq!(engine.fault_stats(1).dropped_by_partition, 1);
        assert_eq!(engine.fault_stats(0).dropped_by_partition, 0);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut engine = two_node_engine(EngineConfig::default());
        engine.run_until(SimTime::from_millis(1));
        // WAN one-way ~41ms, so nothing delivered yet
        assert_eq!(engine.actor(1).deliveries.len(), 0);
        assert_eq!(engine.now(), SimTime::from_millis(1));
        engine.run_until(SimTime::from_secs(10));
        assert!(!engine.actor(1).deliveries.is_empty());
    }
}
