//! Summary statistics and histograms for experiment output.
//!
//! The benchmark harness reports mean/percentile latencies and CDFs in the
//! same shape as the paper's Table 1 and Figures 1 and 3–6. A log-scaled
//! [`Histogram`] keeps memory constant for arbitrarily long runs while
//! preserving ~1% relative resolution, which is ample for order-of-
//! magnitude comparisons.

use serde::{Deserialize, Serialize};

/// Returns the `q`-quantile (`0.0..=1.0`) of `sorted` using the
/// nearest-rank method. `sorted` must be ascending.
///
/// # Panics
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Five-number-style summary of a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum sample.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Computes a summary of `samples` (order irrelevant).
    ///
    /// Returns `None` for an empty sample.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        let sum: f64 = sorted.iter().sum();
        Some(Summary {
            count: sorted.len() as u64,
            mean: sum / sorted.len() as f64,
            min: sorted[0],
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
            max: *sorted.last().unwrap(),
        })
    }
}

/// The fixed percentile set every latency report in the repo uses
/// (paper-style tail latency: median, p90, p99, p999, max), extracted
/// from a [`Histogram`] by [`Histogram::percentiles`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyPercentiles {
    /// Number of samples the percentiles summarize.
    pub count: u64,
    pub mean: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    pub p999: f64,
    pub max: f64,
}

impl LatencyPercentiles {
    /// All-zero summary of an empty sample.
    pub fn empty() -> Self {
        LatencyPercentiles {
            count: 0,
            mean: 0.0,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
            p999: 0.0,
            max: 0.0,
        }
    }
}

/// A log-scaled histogram over positive values.
///
/// Buckets are geometric: bucket `i` covers `[min * g^i, min * g^(i+1))`
/// where `g` is chosen from the requested per-bucket relative error.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    min_value: f64,
    growth: f64,
    log_growth: f64,
    counts: Vec<u64>,
    underflow: u64,
    total: u64,
    sum: f64,
    max_seen: f64,
}

impl Histogram {
    /// Creates a histogram covering `[min_value, max_value]` with roughly
    /// `rel_err` relative resolution per bucket (e.g. `0.01` for 1%).
    ///
    /// # Panics
    /// Panics unless `0 < min_value < max_value` and `rel_err > 0`.
    pub fn new(min_value: f64, max_value: f64, rel_err: f64) -> Self {
        assert!(min_value > 0.0 && max_value > min_value && rel_err > 0.0);
        let growth = 1.0 + 2.0 * rel_err;
        let buckets = ((max_value / min_value).ln() / growth.ln()).ceil() as usize + 1;
        Histogram {
            min_value,
            growth,
            log_growth: growth.ln(),
            counts: vec![0; buckets],
            underflow: 0,
            total: 0,
            sum: 0.0,
            max_seen: 0.0,
        }
    }

    /// A histogram suitable for latencies from 10 µs to 100 s (in ms).
    pub fn for_latency_ms() -> Self {
        Histogram::new(0.01, 100_000.0, 0.01)
    }

    /// Records one sample. Values below the minimum are counted in an
    /// underflow bucket; values above the maximum clamp into the last
    /// bucket.
    pub fn record(&mut self, v: f64) {
        self.total += 1;
        self.sum += v;
        if v > self.max_seen {
            self.max_seen = v;
        }
        if v < self.min_value {
            self.underflow += 1;
            return;
        }
        let idx = ((v / self.min_value).ln() / self.log_growth) as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean of recorded samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> f64 {
        self.max_seen
    }

    /// Approximate `q`-quantile (`0.0..=1.0`); returns the upper edge of
    /// the bucket containing the rank. Returns 0 if empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= rank {
            return self.min_value;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.min_value * self.growth.powi(i as i32 + 1);
            }
        }
        self.max_seen
    }

    /// The standard tail-latency summary (p50/p90/p99/p999 + mean/max).
    pub fn percentiles(&self) -> LatencyPercentiles {
        if self.total == 0 {
            return LatencyPercentiles::empty();
        }
        // A quantile reports its bucket's upper edge, which can sit just
        // above the true maximum — clamp so p999 ≤ max always holds.
        let q = |q: f64| self.quantile(q).min(self.max_seen);
        LatencyPercentiles {
            count: self.total,
            mean: self.mean(),
            p50: q(0.5),
            p90: q(0.9),
            p99: q(0.99),
            p999: q(0.999),
            max: self.max_seen,
        }
    }

    /// Returns `(value, cumulative_fraction)` pairs describing the CDF,
    /// one point per non-empty bucket. Suitable for plotting Figure 1.
    pub fn cdf(&self) -> Vec<(f64, f64)> {
        let mut points = Vec::new();
        if self.total == 0 {
            return points;
        }
        let mut cum = self.underflow;
        if self.underflow > 0 {
            points.push((self.min_value, cum as f64 / self.total as f64));
        }
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                cum += c;
                let edge = self.min_value * self.growth.powi(i as i32 + 1);
                points.push((edge, cum as f64 / self.total as f64));
            }
        }
        points
    }

    /// Merges another histogram with identical configuration.
    ///
    /// # Panics
    /// Panics if the configurations differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.counts.len(), other.counts.len());
        assert!((self.min_value - other.min_value).abs() < f64::EPSILON);
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.total += other.total;
        self.sum += other.sum;
        self.max_seen = self.max_seen.max(other.max_seen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&v, 0.95), 5.0);
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-9);
        assert_eq!(s.p50, 2.0);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = Histogram::new(0.1, 1000.0, 0.01);
        for i in 1..=1000 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        assert!((p50 - 500.0).abs() / 500.0 < 0.05, "p50 {p50}");
        let p95 = h.quantile(0.95);
        assert!((p95 - 950.0).abs() / 950.0 < 0.05, "p95 {p95}");
        assert!((h.mean() - 500.5).abs() < 1e-6);
    }

    #[test]
    fn histogram_underflow_and_clamp() {
        let mut h = Histogram::new(1.0, 10.0, 0.05);
        h.record(0.5); // underflow
        h.record(100.0); // clamps to last bucket
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.25), 1.0); // underflow reports min
        assert_eq!(h.max(), 100.0);
    }

    #[test]
    fn cdf_monotone_and_ends_at_one() {
        let mut h = Histogram::for_latency_ms();
        for v in [0.2, 0.5, 1.0, 5.0, 50.0, 300.0] {
            h.record(v);
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::for_latency_ms();
        for v in [0.3, 2.0, 41.5, 900.0] {
            a.record(v);
        }
        let before = a.clone();
        a.merge(&Histogram::for_latency_ms());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());
        assert_eq!(a.max(), before.max());
        assert_eq!(a.cdf(), before.cdf());
        // Merging *into* an empty histogram reproduces the source too.
        let mut empty = Histogram::for_latency_ms();
        empty.merge(&before);
        assert_eq!(empty.cdf(), before.cdf());
        assert_eq!(empty.quantile(0.5), before.quantile(0.5));
    }

    #[test]
    fn merge_is_associative_and_lossless() {
        let mk = |vals: &[f64]| {
            let mut h = Histogram::for_latency_ms();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = mk(&[0.005, 0.12, 3.4]); // includes an underflow sample
        let b = mk(&[7.7, 7.7, 250.0]);
        let c = mk(&[1e9]); // clamps into the last bucket
                            // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.count(), right.count());
        assert_eq!(left.cdf(), right.cdf());
        assert_eq!(left.percentiles(), right.percentiles());
        // Lossless vs recording everything into one histogram.
        let all = mk(&[0.005, 0.12, 3.4, 7.7, 7.7, 250.0, 1e9]);
        assert_eq!(left.cdf(), all.cdf());
        assert_eq!(left.count(), all.count());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_preserves_bucket_boundaries() {
        // A value landing exactly on a bucket edge must stay in the same
        // bucket whether it was recorded before or after a merge.
        let mut a = Histogram::new(1.0, 100.0, 0.01);
        let edge = 1.0 * (1.0 + 2.0 * 0.01); // upper edge of bucket 0
        a.record(edge);
        let mut b = Histogram::new(1.0, 100.0, 0.01);
        b.record(edge);
        let direct_q = a.quantile(1.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.quantile(1.0), direct_q);
        assert_eq!(a.quantile(0.5), direct_q);
    }

    #[test]
    fn percentiles_summary_shape() {
        assert_eq!(Histogram::for_latency_ms().percentiles().count, 0);
        let mut h = Histogram::for_latency_ms();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        let p = h.percentiles();
        assert_eq!(p.count, 1000);
        assert!(p.p50 <= p.p90 && p.p90 <= p.p99 && p.p99 <= p.p999);
        assert!(p.p999 <= p.max);
        assert!((p.p90 - 900.0).abs() / 900.0 < 0.05, "p90 {}", p.p90);
        assert!((p.p999 - 999.0).abs() / 999.0 < 0.05, "p999 {}", p.p999);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(1.0, 100.0, 0.01);
        let mut b = Histogram::new(1.0, 100.0, 0.01);
        a.record(10.0);
        b.record(20.0);
        b.record(30.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 30.0);
    }
}
