//! Summary statistics and histograms for experiment output.
//!
//! The benchmark harness reports mean/percentile latencies and CDFs in the
//! same shape as the paper's Table 1 and Figures 1 and 3–6. The log-scaled
//! histogram now lives in `hat-obs` (the live-telemetry crate) so the
//! metrics registry, the time-series sampler and the benchmark reports all
//! share one lossless-merge implementation; it is re-exported here
//! unchanged, so existing `hat_sim::stats::Histogram` users are
//! unaffected.

use serde::{Deserialize, Serialize};

pub use hat_obs::{Histogram, LatencyPercentiles};

/// Returns the `q`-quantile (`0.0..=1.0`) of `sorted` using the
/// nearest-rank method. `sorted` must be ascending.
///
/// # Panics
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Five-number-style summary of a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum sample.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Computes a summary of `samples` (order irrelevant).
    ///
    /// Returns `None` for an empty sample.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        let sum: f64 = sorted.iter().sum();
        Some(Summary {
            count: sorted.len() as u64,
            mean: sum / sorted.len() as f64,
            min: sorted[0],
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
            max: *sorted.last().unwrap(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 5.0);
        assert_eq!(percentile(&v, 0.95), 5.0);
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-9);
        assert_eq!(s.p50, 2.0);
        assert!(Summary::of(&[]).is_none());
    }

    // Histogram behavior (quantile accuracy, merge losslessness, window
    // deltas) is tested where the implementation now lives: hat-obs.
    // One smoke check that the re-export is the same type in practice:
    #[test]
    fn reexported_histogram_smoke() {
        let mut h = Histogram::for_latency_ms();
        h.record(5.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentiles().count, 1);
    }
}
