//! Logical simulation time.
//!
//! All simulation time is measured in integer microseconds from the start
//! of the run. Integer time keeps the event queue total order exact and the
//! simulation deterministic (no floating-point drift between platforms).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// This instant expressed in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier`, saturating to zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional milliseconds, rounding to the
    /// nearest microsecond (and never below 1 µs for positive inputs, so a
    /// nonzero modelled latency cannot collapse to an instantaneous hop).
    pub fn from_millis_f64(ms: f64) -> Self {
        let us = (ms * 1_000.0).round();
        if us <= 0.0 {
            SimDuration(if ms > 0.0 { 1 } else { 0 })
        } else {
            SimDuration(us as u64)
        }
    }

    /// This duration in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating multiply by an integer factor.
    pub fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
        // subtraction saturates rather than panicking
        assert_eq!(SimTime::ZERO - SimTime::from_millis(1), SimDuration::ZERO);
    }

    #[test]
    fn fractional_millis_never_zero_for_positive() {
        assert_eq!(SimDuration::from_millis_f64(0.0001).as_micros(), 1);
        assert_eq!(SimDuration::from_millis_f64(0.0).as_micros(), 0);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(b.since(a), SimDuration::from_millis(1));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(SimTime::from_millis(1).to_string(), "1.000ms");
        assert_eq!(SimDuration::from_micros(1500).to_string(), "1.500ms");
    }
}
