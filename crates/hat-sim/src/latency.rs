//! Round-trip latency models calibrated to the paper's EC2 measurements.
//!
//! Section 2.2 of the paper reports one week of ping times between all
//! seven EC2 regions (plus an eighth, Singapore, as a column), across
//! availability zones, and within a single availability zone. Table 1
//! gives the mean RTTs; Figure 1 shows the latency CDFs. We embed the
//! published means verbatim and model each link as a log-normal
//! distribution around that mean, with the log-scale spread (`sigma`)
//! chosen so the tails match the paper's reported percentiles (e.g. the
//! São Paulo ↔ Singapore link: mean 362.8 ms, 95th percentile 649 ms
//! implies `sigma ≈ 0.4`).

use crate::time::SimDuration;
use crate::topology::Site;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The EC2 regions used in the paper's measurement study (Table 1c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Region {
    /// us-west-1 (CA)
    California,
    /// us-west-2 (OR)
    Oregon,
    /// us-east (VA)
    Virginia,
    /// ap-northeast (TO)
    Tokyo,
    /// eu-west (IR)
    Ireland,
    /// ap-southeast-2 (SY)
    Sydney,
    /// sa-east (SP)
    SaoPaulo,
    /// ap-southeast-1 (SI)
    Singapore,
}

/// All eight regions, in the row/column order of Table 1c.
pub const ALL_REGIONS: [Region; 8] = [
    Region::California,
    Region::Oregon,
    Region::Virginia,
    Region::Tokyo,
    Region::Ireland,
    Region::Sydney,
    Region::SaoPaulo,
    Region::Singapore,
];

impl Region {
    /// Two-letter code used in Table 1c.
    pub fn code(self) -> &'static str {
        match self {
            Region::California => "CA",
            Region::Oregon => "OR",
            Region::Virginia => "VA",
            Region::Tokyo => "TO",
            Region::Ireland => "IR",
            Region::Sydney => "SY",
            Region::SaoPaulo => "SP",
            Region::Singapore => "SI",
        }
    }

    /// Index into [`ALL_REGIONS`].
    pub fn index(self) -> usize {
        ALL_REGIONS.iter().position(|r| *r == self).unwrap()
    }
}

/// An unordered pair of distinct regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionPair(pub Region, pub Region);

/// Mean cross-region RTTs in milliseconds, exactly as printed in Table 1c.
///
/// `CROSS_REGION_MEAN_MS[i][j]` for `i < j` in [`ALL_REGIONS`] order;
/// entries with `i >= j` are zero and never read directly (use
/// [`mean_cross_region_rtt_ms`]).
const CROSS_REGION_MEAN_MS: [[f64; 8]; 8] = [
    // CA      OR     VA     TO     IR     SY     SP     SI
    [0.0, 22.5, 84.5, 143.7, 169.8, 179.1, 185.9, 186.9], // CA
    [0.0, 0.0, 82.9, 135.1, 170.6, 200.6, 207.8, 234.4],  // OR
    [0.0, 0.0, 0.0, 202.4, 107.9, 265.6, 163.4, 253.5],   // VA
    [0.0, 0.0, 0.0, 0.0, 278.3, 144.2, 301.4, 90.6],      // TO
    [0.0, 0.0, 0.0, 0.0, 0.0, 346.2, 239.8, 234.1],       // IR
    [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 333.6, 243.1],         // SY
    [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 362.8],           // SP
    [0.0; 8],                                             // SI
];

/// Mean RTT between two distinct regions, in milliseconds (Table 1c).
///
/// # Panics
/// Panics if `a == b`; same-region links are intra-AZ or cross-AZ and use
/// the Table 1a/1b means instead.
pub fn mean_cross_region_rtt_ms(a: Region, b: Region) -> f64 {
    assert!(a != b, "cross-region mean requested for identical regions");
    let (i, j) = (a.index(), b.index());
    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
    CROSS_REGION_MEAN_MS[lo][hi]
}

/// Mean intra-availability-zone RTT (Table 1a; mean of the three
/// host-pair means 0.55, 0.56, 0.50).
pub const INTRA_AZ_MEAN_MS: f64 = 0.537;

/// Mean cross-availability-zone RTT within one region (Table 1b; mean of
/// 1.08, 3.12, 3.57).
pub const CROSS_AZ_MEAN_MS: f64 = 2.59;

/// The regions used for the five-cluster deployment of Figure 3C
/// ("the five EC2 datacenters with lowest communication cost"):
/// us-east (VA), us-west-1 (CA), us-west-2 (OR), eu-west (IR) and
/// ap-northeast (Tokyo).
pub const FIG3C_REGIONS: [Region; 5] = [
    Region::Virginia,
    Region::California,
    Region::Oregon,
    Region::Ireland,
    Region::Tokyo,
];

/// Classification of a link between two sites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkClass {
    /// Same node talking to itself (loopback).
    Local,
    /// Distinct hosts in the same availability zone (Table 1a scale).
    IntraAz,
    /// Different availability zones of the same region (Table 1b scale).
    CrossAz,
    /// Different regions (Table 1c scale).
    CrossRegion(RegionPair),
}

/// A calibrated latency model: log-normal RTTs per link class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Loopback RTT in ms.
    pub local_rtt_ms: f64,
    /// Mean intra-AZ RTT in ms.
    pub intra_az_mean_ms: f64,
    /// Mean cross-AZ RTT in ms.
    pub cross_az_mean_ms: f64,
    /// Log-scale spread for intra-AZ links.
    pub sigma_intra: f64,
    /// Log-scale spread for cross-AZ links.
    pub sigma_cross_az: f64,
    /// Log-scale spread for cross-region links (0.4 reproduces the paper's
    /// SP↔SI mean 362.8 ms / p95 649 ms ratio).
    pub sigma_wan: f64,
    /// Multiplier applied to the Table 1c cross-region means (1.0 = the
    /// paper's measurements; 0.0 disables WAN latency for ablations).
    pub wan_scale: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            local_rtt_ms: 0.05,
            intra_az_mean_ms: INTRA_AZ_MEAN_MS,
            cross_az_mean_ms: CROSS_AZ_MEAN_MS,
            sigma_intra: 0.5,
            sigma_cross_az: 0.6,
            sigma_wan: 0.4,
            wan_scale: 1.0,
        }
    }
}

impl LatencyModel {
    /// A model with zero latency everywhere — used by ablation benches to
    /// isolate protocol/service-time effects from network effects.
    pub fn zero() -> Self {
        LatencyModel {
            local_rtt_ms: 0.0,
            intra_az_mean_ms: 0.0,
            cross_az_mean_ms: 0.0,
            sigma_intra: 0.0,
            sigma_cross_az: 0.0,
            sigma_wan: 0.0,
            wan_scale: 0.0,
        }
    }

    /// Classifies the link between two sites.
    pub fn classify(a: Site, b: Site) -> LinkClass {
        if a.region != b.region {
            LinkClass::CrossRegion(RegionPair(a.region, b.region))
        } else if a.az != b.az {
            LinkClass::CrossAz
        } else {
            LinkClass::IntraAz
        }
    }

    /// Mean RTT of a link class, in milliseconds.
    pub fn mean_rtt_ms(&self, class: LinkClass) -> f64 {
        match class {
            LinkClass::Local => self.local_rtt_ms,
            LinkClass::IntraAz => self.intra_az_mean_ms,
            LinkClass::CrossAz => self.cross_az_mean_ms,
            LinkClass::CrossRegion(RegionPair(a, b)) => {
                mean_cross_region_rtt_ms(a, b) * self.wan_scale
            }
        }
    }

    fn sigma(&self, class: LinkClass) -> f64 {
        match class {
            LinkClass::Local => 0.0,
            LinkClass::IntraAz => self.sigma_intra,
            LinkClass::CrossAz => self.sigma_cross_az,
            LinkClass::CrossRegion(_) => self.sigma_wan,
        }
    }

    /// Samples a round-trip time for a link class, in milliseconds.
    ///
    /// The sample is log-normal with the configured mean: for mean `m` and
    /// log-scale spread `σ`, `ln X ~ N(ln m − σ²/2, σ²)`, so `E[X] = m`.
    pub fn sample_rtt_ms<R: Rng + ?Sized>(&self, class: LinkClass, rng: &mut R) -> f64 {
        let mean = self.mean_rtt_ms(class);
        if mean <= 0.0 {
            return 0.0;
        }
        let sigma = self.sigma(class);
        if sigma == 0.0 {
            return mean;
        }
        let mu = mean.ln() - sigma * sigma / 2.0;
        let z = standard_normal(rng);
        (mu + sigma * z).exp()
    }

    /// Samples a one-way delivery latency between two sites (half a
    /// sampled RTT).
    pub fn sample_one_way<R: Rng + ?Sized>(&self, a: Site, b: Site, rng: &mut R) -> SimDuration {
        let class = Self::classify(a, b);
        let rtt = self.sample_rtt_ms(class, rng);
        SimDuration::from_millis_f64(rtt / 2.0)
    }
}

/// Samples a standard normal deviate via the Box–Muller transform.
///
/// Implemented locally so the crate needs no distribution dependency; the
/// second deviate of each Box–Muller pair is deliberately discarded to keep
/// the sampler stateless.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would take ln(0).
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::EPSILON {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn table1c_values_match_paper() {
        assert_eq!(
            mean_cross_region_rtt_ms(Region::California, Region::Oregon),
            22.5
        );
        assert_eq!(
            mean_cross_region_rtt_ms(Region::SaoPaulo, Region::Singapore),
            362.8
        );
        assert_eq!(
            mean_cross_region_rtt_ms(Region::Ireland, Region::Sydney),
            346.2
        );
        // symmetry
        assert_eq!(
            mean_cross_region_rtt_ms(Region::Oregon, Region::California),
            22.5
        );
        assert_eq!(
            mean_cross_region_rtt_ms(Region::Tokyo, Region::Singapore),
            90.6
        );
    }

    #[test]
    #[should_panic]
    fn same_region_mean_panics() {
        mean_cross_region_rtt_ms(Region::Tokyo, Region::Tokyo);
    }

    #[test]
    fn classify_links() {
        let a = Site::new(Region::Virginia, 0);
        let b = Site::new(Region::Virginia, 0);
        let c = Site::new(Region::Virginia, 1);
        let d = Site::new(Region::Oregon, 0);
        assert_eq!(LatencyModel::classify(a, b), LinkClass::IntraAz);
        assert_eq!(LatencyModel::classify(a, c), LinkClass::CrossAz);
        assert!(matches!(
            LatencyModel::classify(a, d),
            LinkClass::CrossRegion(_)
        ));
    }

    #[test]
    fn sampled_mean_converges_to_table_mean() {
        let model = LatencyModel::default();
        let mut rng = StdRng::seed_from_u64(7);
        let class = LinkClass::CrossRegion(RegionPair(Region::SaoPaulo, Region::Singapore));
        let n = 40_000;
        let sum: f64 = (0..n).map(|_| model.sample_rtt_ms(class, &mut rng)).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - 362.8).abs() < 5.0,
            "sampled mean {mean} too far from 362.8"
        );
    }

    #[test]
    fn sampled_p95_reproduces_heavy_tail() {
        // Paper: SP<->SI mean 362.8ms, 95th percentile 649ms.
        let model = LatencyModel::default();
        let mut rng = StdRng::seed_from_u64(11);
        let class = LinkClass::CrossRegion(RegionPair(Region::SaoPaulo, Region::Singapore));
        let mut samples: Vec<f64> = (0..40_000)
            .map(|_| model.sample_rtt_ms(class, &mut rng))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p95 = samples[(samples.len() as f64 * 0.95) as usize];
        assert!(
            (p95 - 649.0).abs() < 60.0,
            "p95 {p95} too far from paper's 649ms"
        );
    }

    #[test]
    fn zero_model_samples_zero() {
        let model = LatencyModel::zero();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(model.sample_rtt_ms(LinkClass::IntraAz, &mut rng), 0.0);
        let d = model.sample_one_way(
            Site::new(Region::Virginia, 0),
            Site::new(Region::Tokyo, 0),
            &mut rng,
        );
        assert_eq!(d, SimDuration::ZERO);
    }

    #[test]
    fn intra_faster_than_cross_az_faster_than_wan() {
        // Reproduces the paper's ordering claim: intra-DC is 1.8-6.4x faster
        // than cross-AZ and 40-647x faster than cross-region.
        let m = LatencyModel::default();
        let intra = m.mean_rtt_ms(LinkClass::IntraAz);
        let az = m.mean_rtt_ms(LinkClass::CrossAz);
        let ratio_az = az / intra;
        assert!((1.8..=6.5).contains(&ratio_az), "ratio {ratio_az}");
        for (i, &a) in ALL_REGIONS.iter().enumerate() {
            for &b in &ALL_REGIONS[i + 1..] {
                let wan = m.mean_rtt_ms(LinkClass::CrossRegion(RegionPair(a, b)));
                let r = wan / intra;
                assert!((40.0..=700.0).contains(&r), "{a:?}-{b:?} ratio {r}");
            }
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
