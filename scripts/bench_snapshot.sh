#!/usr/bin/env bash
# Runs the hat-bench micro suite plus the RAMP latency experiment and
# captures the results as a JSON snapshot, so the perf trajectory can be
# tracked across PRs.
#
# Usage:
#   scripts/bench_snapshot.sh [output.json] [label]
#
# Example:
#   scripts/bench_snapshot.sh BENCH_pr8.json pr8
#
# The workspace criterion shim prints one line per benchmark:
#   <name>  mean <dur>  min <dur>  (<n> samples)
# `exp_ramp --smoke --json` prints one JSON object per (mix, engine):
#   {"mix":...,"engine":...,"tps":...,"p50_ms":...,...,"commits":...}
# `exp_nemesis --smoke --json` prints one JSON object per
# (schedule, engine) with the per-window telemetry series and fault
# marks embedded. This script merges all three into a stable document:
#   { "label": ...,
#     "benches": [ { "name", "mean_ns", "min_ns", "samples" } ],
#     "latency": [ { "mix", "engine", "tps", "p50_ms", "p95_ms",
#                    "p99_ms", "p999_ms", "max_ms", "commits" } ],
#     "nemesis": [ { "schedule", "engine", "committed", "unavailable",
#                    ..., "staleness", "series": {"windows", "faults"} } ] }
# The nemesis rows keep only summary stats plus the fault marks and
# window count (full per-window arrays would swamp the snapshot).
set -euo pipefail

OUT="${1:-BENCH_snapshot.json}"
LABEL="${2:-$(git -C "$(dirname "$0")/.." rev-parse --short HEAD 2>/dev/null || echo snapshot)}"

RAW="$(mktemp)"
LAT="$(mktemp)"
NEM="$(mktemp)"
trap 'rm -f "$RAW" "$LAT" "$NEM"' EXIT
cargo bench -p hat-bench --bench micro 2>/dev/null >"$RAW"
cargo run --release -p hat-bench --bin exp_ramp -- --smoke --json 2>/dev/null >"$LAT"
cargo run --release -p hat-bench --bin exp_nemesis -- --smoke --json 2>/dev/null >"$NEM"

python3 - "$OUT" "$LABEL" "$RAW" "$LAT" "$NEM" <<'PY'
import json, re, sys

out_path, label, raw_path, lat_path, nem_path = sys.argv[1:6]

UNITS = {"ns": 1.0, "µs": 1e3, "us": 1e3, "ms": 1e6, "s": 1e9}

def to_ns(dur: str) -> float:
    m = re.fullmatch(r"([0-9.]+)(ns|µs|us|ms|s)", dur)
    if not m:
        raise ValueError(f"unparseable duration: {dur!r}")
    return float(m.group(1)) * UNITS[m.group(2)]

line_re = re.compile(
    r"^(?P<name>\S+)\s+mean\s+(?P<mean>[0-9.]+(?:ns|µs|us|ms|s))"
    r"\s+min\s+(?P<min>[0-9.]+(?:ns|µs|us|ms|s))\s+\((?P<n>\d+) samples\)"
)

benches = []
for line in open(raw_path):
    m = line_re.match(line.strip())
    if m:
        benches.append(
            {
                "name": m.group("name"),
                "mean_ns": round(to_ns(m.group("mean")), 3),
                "min_ns": round(to_ns(m.group("min")), 3),
                "samples": int(m.group("n")),
            }
        )

if not benches:
    sys.exit("no benchmark lines parsed from `cargo bench` output")

latency = []
for line in open(lat_path):
    line = line.strip()
    if line.startswith("{"):
        latency.append(json.loads(line))

if not latency:
    sys.exit("no latency lines parsed from `exp_ramp --json` output")

nemesis = []
for line in open(nem_path):
    line = line.strip()
    if not line.startswith("{"):
        continue
    r = json.loads(line)
    series = r.pop("series")
    ts = [w["t_us"] for w in series["windows"]]
    assert ts == sorted(ts), f"non-monotone window timestamps: {r}"
    r["windows"] = len(series["windows"])
    r["faults"] = series["faults"]
    nemesis.append(r)

if not nemesis:
    sys.exit("no nemesis lines parsed from `exp_nemesis --json` output")

doc = {
    "label": label,
    "bench": "micro",
    "benches": benches,
    "latency": latency,
    "nemesis": nemesis,
}
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(
    f"wrote {out_path}: {len(benches)} benchmarks, {len(latency)} latency rows, "
    f"{len(nemesis)} nemesis rows"
)
PY
