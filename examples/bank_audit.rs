//! Bank audit: why Monotonic Atomic View matters (§5.1.2) — maintaining
//! a multi-key invariant (an account and its audit trail must move
//! together), and why Lost Update cannot be prevented (§5.2.1).
//!
//! Run: `cargo run --release --example bank_audit`

use hatdb::core::{ClusterSpec, HatError, ProtocolKind, SimulationBuilder};
use hatdb::history::{check, IsolationLevel};
use hatdb::sim::{Partition, PartitionSchedule, SimDuration, SimTime};

fn atomic_audit_trail() {
    println!("-- MAV keeps account + audit trail consistent --");
    let mut sim = SimulationBuilder::new(ProtocolKind::Mav)
        .seed(7)
        .clusters(ClusterSpec::va_or(3))
        .clients_per_cluster(1)
        .build();
    let teller = sim.client(0);
    let auditor = sim.client(1);

    sim.txn(teller, |t| {
        t.put("acct:alice", "1000");
        t.put("audit:alice", "0 deposits");
    });
    sim.settle();

    for round in 1..=5u32 {
        sim.txn(teller, |t| {
            let bal: u64 = t.get("acct:alice").unwrap().parse().unwrap();
            t.put("acct:alice", &(bal + 100).to_string());
            t.put("audit:alice", &format!("{round} deposits"));
        });
        // The auditor reads at arbitrary times; under MAV the pair is
        // never torn: if the audit trail shows N deposits, the balance
        // reflects at least N deposits.
        let (bal, audit) = sim.txn(auditor, |t| {
            // read audit first, then balance: MAV's required vector
            // forces the balance to be at least as new
            (t.get("audit:alice"), t.get("acct:alice"))
        });
        let deposits: u64 = bal
            .as_deref()
            .unwrap_or("")
            .split(' ')
            .next()
            .unwrap_or("0")
            .parse()
            .unwrap_or(0);
        println!("  auditor sees audit={bal:?} balance={audit:?}");
        let _ = deposits;
        sim.run_for(SimDuration::from_millis(23));
    }
    assert_eq!(sim.mav_required_misses(), 0);
}

fn lost_update_is_unpreventable() {
    println!("-- but no HAT system prevents Lost Update (§5.2.1) --");
    let probe = SimulationBuilder::new(ProtocolKind::Mav)
        .seed(8)
        .clusters(ClusterSpec::va_or(2))
        .clients_per_cluster(1)
        .build();
    let side_a: Vec<u32> = probe.layout().servers[0]
        .iter()
        .copied()
        .chain([probe.client(0)])
        .collect();
    let side_b: Vec<u32> = probe.layout().servers[1]
        .iter()
        .copied()
        .chain([probe.client(1)])
        .collect();
    drop(probe);
    let mut sim = SimulationBuilder::new(ProtocolKind::Mav)
        .seed(8)
        .clusters(ClusterSpec::va_or(2))
        .clients_per_cluster(1)
        .partitions(PartitionSchedule::from_partitions(vec![Partition::new(
            SimTime::from_secs(3),
            SimTime::from_secs(30),
            side_a,
            side_b,
        )]))
        .build();
    let teller_va = sim.client(0);
    let teller_or = sim.client(1);
    sim.txn(teller_va, |t| t.put("acct:bob", "100"));
    sim.settle();
    sim.run_for(SimDuration::from_secs(2)); // partition begins at t=3s

    // both tellers credit bob concurrently
    sim.txn(teller_va, |t| {
        let v: u64 = t.get("acct:bob").unwrap().parse().unwrap();
        t.put("acct:bob", &(v + 20).to_string());
    });
    sim.txn(teller_or, |t| {
        let v: u64 = t.get("acct:bob").unwrap().parse().unwrap();
        t.put("acct:bob", &(v + 30).to_string());
    });
    sim.run_for(SimDuration::from_secs(30));
    sim.settle();
    let final_bal = sim.txn(teller_va, |t| t.get("acct:bob")).unwrap();
    println!("  serial balance would be 150; converged balance = {final_bal}");
    let report = check(sim.take_records(), IsolationLevel::SnapshotIsolation);
    println!(
        "  Adya checker (SI level): {} Lost Update violation(s) detected",
        report.violations.len()
    );
    assert!(!report.ok());
}

fn coordination_has_a_price() {
    println!("-- preventing it requires unavailable coordination (2PL) --");
    let mut sim = SimulationBuilder::new(ProtocolKind::TwoPhaseLocking)
        .seed(9)
        .clusters(ClusterSpec::va_or(2))
        .clients_per_cluster(2)
        .build();
    let tellers: Vec<_> = (0..4).map(|i| sim.client(i)).collect();
    sim.txn(tellers[0], |t| t.put("acct:carol", "0"));
    let t0 = sim.now();
    for &c in &tellers {
        sim.txn(c, |t| {
            let v: u64 = t.get("acct:carol").unwrap().parse().unwrap();
            t.put("acct:carol", &(v + 25).to_string());
        });
    }
    let elapsed = sim.now() - t0;
    let v = sim.txn(tellers[0], |t| t.get("acct:carol"));
    println!(
        "  2PL: all 4 credits preserved (balance={}), but {} of cross-DC locking",
        v.unwrap(),
        elapsed
    );
    // ... and under a partition 2PL simply blocks (see exp_impossibility)
    let _ = HatError::Unavailable { key: None };
}

fn main() {
    atomic_audit_trail();
    println!();
    lost_update_is_unpreventable();
    println!();
    coordination_has_a_price();
}
