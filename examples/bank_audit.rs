//! Bank audit: why Monotonic Atomic View matters (§5.1.2) — maintaining
//! a multi-key invariant (an account and its audit trail must move
//! together), and why Lost Update cannot be prevented (§5.2.1).
//!
//! Run: `cargo run --release --example bank_audit`

use hatdb::core::{ClusterSpec, DeploymentBuilder, HatError, ProtocolKind, SessionOptions};
use hatdb::history::{check, IsolationLevel};
use hatdb::sim::{Partition, PartitionSchedule, SimDuration, SimTime};
use hatdb::Frontend;

fn atomic_audit_trail() {
    println!("-- MAV keeps account + audit trail consistent --");
    let mut front = DeploymentBuilder::new(ProtocolKind::Mav)
        .seed(7)
        .clusters(ClusterSpec::va_or(3))
        .sessions_per_cluster(1)
        .build();
    let teller = front.open_session(SessionOptions::default());
    let auditor = front.open_session(SessionOptions::default());

    front.txn(&teller, |t| {
        t.put("acct:alice", "1000")?;
        t.put("audit:alice", "0 deposits")
    });
    front.quiesce();

    for round in 1..=5u32 {
        front.txn(&teller, |t| {
            let bal: u64 = t.get("acct:alice")?.unwrap().parse().unwrap();
            t.put("acct:alice", &(bal + 100).to_string())?;
            t.put("audit:alice", &format!("{round} deposits"))
        });
        // The auditor reads at arbitrary times; under MAV the pair is
        // never torn: if the audit trail shows N deposits, the balance
        // reflects at least N deposits.
        let (audit, balance) = front.txn(&auditor, |t| {
            // read audit first, then balance: MAV's required vector
            // forces the balance to be at least as new
            Ok((t.get("audit:alice")?, t.get("acct:alice")?))
        });
        println!("  auditor sees audit={audit:?} balance={balance:?}");
        front.run_for(SimDuration::from_millis(23));
    }
    assert_eq!(front.mav_required_misses(), 0);
}

fn lost_update_is_unpreventable() {
    println!("-- but no HAT system prevents Lost Update (§5.2.1) --");
    let probe = DeploymentBuilder::new(ProtocolKind::Mav)
        .seed(8)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(1)
        .build();
    let side_a: Vec<u32> = probe.layout().servers[0]
        .iter()
        .copied()
        .chain([probe.client(0)])
        .collect();
    let side_b: Vec<u32> = probe.layout().servers[1]
        .iter()
        .copied()
        .chain([probe.client(1)])
        .collect();
    drop(probe);
    let mut front = DeploymentBuilder::new(ProtocolKind::Mav)
        .seed(8)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(1)
        .partitions(PartitionSchedule::from_partitions(vec![Partition::new(
            SimTime::from_secs(3),
            SimTime::from_secs(30),
            side_a,
            side_b,
        )]))
        .build();
    let teller_va = front.open_session(SessionOptions::default());
    let teller_or = front.open_session(SessionOptions::default());
    front.txn(&teller_va, |t| t.put("acct:bob", "100"));
    front.quiesce();
    front.run_for(SimDuration::from_secs(2)); // partition begins at t=3s

    // both tellers credit bob concurrently
    front.txn(&teller_va, |t| {
        let v: u64 = t.get("acct:bob")?.unwrap().parse().unwrap();
        t.put("acct:bob", &(v + 20).to_string())
    });
    front.txn(&teller_or, |t| {
        let v: u64 = t.get("acct:bob")?.unwrap().parse().unwrap();
        t.put("acct:bob", &(v + 30).to_string())
    });
    front.run_for(SimDuration::from_secs(30));
    front.quiesce();
    let final_bal = front.txn(&teller_va, |t| t.get("acct:bob")).unwrap();
    println!("  serial balance would be 150; converged balance = {final_bal}");
    let report = check(front.take_records(), IsolationLevel::SnapshotIsolation);
    println!(
        "  Adya checker (SI level): {} Lost Update violation(s) detected",
        report.violations.len()
    );
    assert!(!report.ok());
}

fn coordination_has_a_price() {
    println!("-- preventing it requires unavailable coordination (2PL) --");
    let mut front = DeploymentBuilder::new(ProtocolKind::TwoPhaseLocking)
        .seed(9)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(2)
        .build();
    let tellers: Vec<_> = (0..4)
        .map(|_| front.open_session(SessionOptions::default()))
        .collect();
    front.txn(&tellers[0], |t| t.put("acct:carol", "0"));
    let t0 = front.now();
    for s in &tellers {
        front.txn(s, |t| {
            let v: u64 = t.get("acct:carol")?.unwrap().parse().unwrap();
            t.put("acct:carol", &(v + 25).to_string())
        });
    }
    let elapsed = front.now() - t0;
    let v = front.txn(&tellers[0], |t| t.get("acct:carol"));
    println!(
        "  2PL: all 4 credits preserved (balance={}), but {} of cross-DC locking",
        v.unwrap(),
        elapsed
    );
    // ... and under a partition 2PL simply blocks (see exp_impossibility)
    let _ = HatError::Unavailable { key: None };
}

fn main() {
    atomic_audit_trail();
    println!();
    lost_update_is_unpreventable();
    println!();
    coordination_has_a_price();
}
