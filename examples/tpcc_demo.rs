//! TPC-C-lite on HATs (§6.2): run the five transactions against a
//! geo-replicated MAV deployment and audit the consistency conditions.
//! The workload is written against the backend-agnostic `Frontend`, so
//! the same runner drives the simulator here and the threaded runtime at
//! the end.
//!
//! Run: `cargo run --release --example tpcc_demo`

use hatdb::core::{ClusterSpec, DeploymentBuilder, ProtocolKind, SessionLevel, SessionOptions};
use hatdb::workloads::tpcc::{check_consistency, TpccConfig, TpccRunner};
use hatdb::{BuildThreaded, Frontend, RuntimeConfig, Session};

fn session_options() -> SessionOptions {
    SessionOptions {
        level: SessionLevel::Monotonic,
        sticky: true,
    }
}

fn tpcc_config() -> TpccConfig {
    TpccConfig {
        warehouses: 1,
        districts: 2,
        customers: 5,
        items: 40,
        initial_stock: 25,
        ..TpccConfig::default()
    }
}

/// The whole demo, generic over the execution backend.
fn run_mix<F: Frontend>(front: &mut F, client: &Session, rounds: u32) {
    let mut runner = TpccRunner::new(tpcc_config(), 1);

    println!("  loading warehouse...");
    runner.load(front, client).unwrap();

    println!("  running the transaction mix...");
    for i in 0..rounds {
        let lines = [(i % 40, 3), ((i * 7 + 1) % 40, 2)];
        let res = runner
            .new_order(front, client, 0, i % 2, i % 5, &lines)
            .unwrap();
        assert!(
            res.stock_after.iter().all(|&q| q >= 0),
            "the restock rule keeps stock non-negative"
        );
        runner
            .payment(front, client, 0, i % 2, i % 5, 500 + u64::from(i))
            .unwrap();
        if i % 5 == 4 {
            front.quiesce();
            if let Some(oid) = runner.delivery(front, client, 0, i % 2, i).unwrap() {
                println!("  delivered order {oid}");
            }
        }
    }
    front.quiesce();

    let (oid, order, lines) = runner
        .order_status(front, client, 0, 0)
        .unwrap()
        .expect("orders exist");
    println!(
        "  order-status: latest order {oid} by customer {} with {} line(s): {lines:?}",
        order.c_id, order.line_count
    );

    let low = runner.stock_level(front, client, 0, 15).unwrap();
    println!("  stock-level: {low} item(s) below threshold 15");

    let report = check_consistency(front, client, &runner.config).unwrap();
    println!("  consistency audit: {report:?}");
    assert!(report.all_ok(), "healthy network, single session: clean");
}

fn main() {
    println!("simulated backend (geo-replicated, WAN latency model):");
    let mut sim = DeploymentBuilder::new(ProtocolKind::Mav)
        .seed(2026)
        .clusters(ClusterSpec::va_or(3))
        .sessions_per_cluster(1)
        .build();
    let client = sim.open_session(session_options());
    run_mix(&mut sim, &client, 25);
    assert_eq!(sim.mav_required_misses(), 0);

    println!();
    println!("threaded backend (same workload, real threads + channels):");
    let mut rt = DeploymentBuilder::new(ProtocolKind::Mav)
        .seed(2026)
        .clusters(ClusterSpec::single_dc(2, 2))
        .sessions_per_cluster(1)
        .build_threaded(RuntimeConfig::default());
    let client = rt.open_session(session_options());
    run_mix(&mut rt, &client, 10);
    rt.shutdown();

    println!();
    println!(
        "TPC-C conditions hold under MAV on both backends (see exp_tpcc for partition anomalies)"
    );
}
