//! TPC-C-lite on HATs (§6.2): run the five transactions against a
//! geo-replicated MAV deployment and audit the consistency conditions.
//!
//! Run: `cargo run --release --example tpcc_demo`

use hatdb::core::{ClusterSpec, ProtocolKind, SessionLevel, SessionOptions, SimulationBuilder};
use hatdb::workloads::tpcc::{check_consistency, TpccConfig, TpccRunner};

fn main() {
    let mut sim = SimulationBuilder::new(ProtocolKind::Mav)
        .seed(2026)
        .clusters(ClusterSpec::va_or(3))
        .clients_per_cluster(1)
        .session(SessionOptions {
            level: SessionLevel::Monotonic,
            sticky: true,
        })
        .build();
    let client = sim.client(0);
    let cfg = TpccConfig {
        warehouses: 1,
        districts: 2,
        customers: 5,
        items: 40,
        initial_stock: 25,
        ..TpccConfig::default()
    };
    let mut runner = TpccRunner::new(cfg, 1);

    println!("loading warehouse...");
    runner.load(&mut sim, client).unwrap();

    println!("running the transaction mix...");
    for i in 0..25u32 {
        let lines = [(i % 40, 3), ((i * 7 + 1) % 40, 2)];
        let res = runner
            .new_order(&mut sim, client, 0, i % 2, i % 5, &lines)
            .unwrap();
        assert!(
            res.stock_after.iter().all(|&q| q >= 0),
            "the restock rule keeps stock non-negative"
        );
        runner
            .payment(&mut sim, client, 0, i % 2, i % 5, 500 + u64::from(i))
            .unwrap();
        if i % 5 == 4 {
            sim.settle();
            if let Some(oid) = runner.delivery(&mut sim, client, 0, i % 2, i).unwrap() {
                println!("  delivered order {oid}");
            }
        }
    }
    sim.settle();

    let (oid, order, lines) = runner
        .order_status(&mut sim, client, 0, 0)
        .unwrap()
        .expect("orders exist");
    println!(
        "order-status: latest order {oid} by customer {} with {} line(s): {lines:?}",
        order.c_id, order.line_count
    );

    let low = runner.stock_level(&mut sim, client, 0, 15).unwrap();
    println!("stock-level: {low} item(s) below threshold 15");

    let report = check_consistency(&mut sim, client, &runner.config).unwrap();
    println!("consistency audit: {report:?}");
    assert!(report.all_ok(), "healthy network, single client: clean");
    assert_eq!(sim.mav_required_misses(), 0);
    println!("TPC-C conditions hold under MAV (see exp_tpcc for the partition anomalies)");
}
