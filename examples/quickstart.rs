//! Quickstart: build a geo-replicated MAV deployment, run transactions,
//! observe atomic multi-key visibility.
//!
//! Run: `cargo run --release --example quickstart`

use hatdb::core::{ClusterSpec, ProtocolKind, SimulationBuilder};
use hatdb::sim::Region;

fn main() {
    // Two fully replicated clusters: Virginia and Oregon, three servers
    // each, with EC2-calibrated WAN latency between them.
    let mut sim = SimulationBuilder::new(ProtocolKind::Mav)
        .seed(42)
        .clusters(ClusterSpec::regions(&[Region::Virginia, Region::Oregon], 3))
        .clients_per_cluster(1)
        .build();

    let va_client = sim.client(0); // sticky to the Virginia cluster
    let or_client = sim.client(1); // sticky to the Oregon cluster

    // A multi-key transaction from Virginia.
    sim.txn(va_client, |t| {
        t.put("profile:alice", "brewer-fan-42");
        t.put("followers:alice", "1");
    });
    println!("[{}] alice's profile committed in Virginia", sim.now());

    // Let anti-entropy carry the writes across the WAN.
    sim.settle();

    // Read both keys from Oregon: under Monotonic Atomic View, either
    // both writes are visible or neither — never a torn pair.
    let (profile, followers) = sim.txn(or_client, |t| {
        (t.get("profile:alice"), t.get("followers:alice"))
    });
    println!(
        "[{}] Oregon reads profile={profile:?} followers={followers:?}",
        sim.now()
    );
    assert_eq!(profile.as_deref(), Some("brewer-fan-42"));
    assert_eq!(followers.as_deref(), Some("1"));

    // Predicate read (P-CI substrate): everything under a prefix.
    sim.txn(va_client, |t| {
        t.put("profile:bob", "new-here");
    });
    sim.settle();
    let profiles = sim.txn(or_client, |t| t.scan("profile:"));
    println!("[{}] all profiles: {profiles:?}", sim.now());
    assert_eq!(profiles.len(), 2);

    // The MAV invariant held everywhere: no read ever needed a fallback.
    assert_eq!(sim.mav_required_misses(), 0);
    println!("done: MAV served every read within its required bound");
}
