//! Quickstart: build a geo-replicated MAV deployment, open a session per
//! region, run transactions, observe atomic multi-key visibility.
//!
//! Run: `cargo run --release --example quickstart`

use hatdb::core::{ClusterSpec, DeploymentBuilder, ProtocolKind, SessionOptions};
use hatdb::sim::Region;
use hatdb::Frontend;

fn main() {
    // Two fully replicated clusters: Virginia and Oregon, three servers
    // each, with EC2-calibrated WAN latency between them.
    let mut front = DeploymentBuilder::new(ProtocolKind::Mav)
        .seed(42)
        .clusters(ClusterSpec::regions(&[Region::Virginia, Region::Oregon], 3))
        .sessions_per_cluster(1)
        .build();

    // Sessions claim slots round-robin over clusters; each carries its
    // own options (both sticky defaults here).
    let va_session = front.open_session(SessionOptions::default()); // Virginia
    let or_session = front.open_session(SessionOptions::default()); // Oregon

    // A multi-key transaction from Virginia.
    front.txn(&va_session, |t| {
        t.put("profile:alice", "brewer-fan-42")?;
        t.put("followers:alice", "1")
    });
    println!("[{}] alice's profile committed in Virginia", front.now());

    // Let anti-entropy carry the writes across the WAN.
    front.quiesce();

    // Read both keys from Oregon: under Monotonic Atomic View, either
    // both writes are visible or neither — never a torn pair.
    let (profile, followers) = front.txn(&or_session, |t| {
        Ok((t.get("profile:alice")?, t.get("followers:alice")?))
    });
    println!(
        "[{}] Oregon reads profile={profile:?} followers={followers:?}",
        front.now()
    );
    assert_eq!(profile.as_deref(), Some("brewer-fan-42"));
    assert_eq!(followers.as_deref(), Some("1"));

    // Predicate read (P-CI substrate): everything under a prefix.
    front.txn(&va_session, |t| t.put("profile:bob", "new-here"));
    front.quiesce();
    let profiles = front.txn(&or_session, |t| t.scan("profile:"));
    println!("[{}] all profiles: {profiles:?}", front.now());
    assert_eq!(profiles.len(), 2);

    // The MAV invariant held everywhere: no read ever needed a fallback.
    assert_eq!(front.mav_required_misses(), 0);
    println!("done: MAV served every read within its required bound");
}
