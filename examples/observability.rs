//! Observability tour: run a traced deployment, print per-op latency
//! percentiles, and export the transaction timeline as Chrome-trace
//! JSON (open it in `about:tracing` or <https://ui.perfetto.dev>).
//!
//! Run: `cargo run --release --example observability [out.json]`
//!
//! The example also demonstrates — and asserts — the zero-cost-when-off
//! contract: a second, untraced deployment runs the same workload and
//! the process-wide trace-event counter must not move.

use hatdb::core::{ClusterSpec, DeploymentBuilder, ProtocolKind, SessionOptions, SystemConfig};
use hatdb::trace::{events_recorded_total, spans};
use hatdb::Frontend;

fn build(trace: bool) -> hatdb::SimFrontend {
    let mut cfg = SystemConfig::new(ProtocolKind::Mav);
    cfg.trace = trace;
    DeploymentBuilder::new(ProtocolKind::Mav)
        .seed(0x0B5E_71ED)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(1)
        .config(cfg)
        .build()
}

fn workload(front: &mut hatdb::SimFrontend) {
    let va = front.open_session(SessionOptions::default());
    let or = front.open_session(SessionOptions::default());
    for round in 0..5 {
        let v = format!("balance-{round}");
        front.txn(&va, |t| {
            t.put("acct:alice", &v)?;
            t.put("acct:bob", &v)
        });
        front.quiesce();
        front.txn(&or, |t| {
            let _ = t.get("acct:alice")?;
            let _ = t.get("acct:bob")?;
            Ok(())
        });
    }
    front.quiesce();
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace.json".to_string());

    // --- Traced run -----------------------------------------------------
    let mut front = build(true);
    workload(&mut front);

    let metrics = front.aggregate_metrics();
    println!("commit latency: {:?}", metrics.commit_percentiles());
    for (kind, p) in metrics.op_percentiles() {
        println!(
            "{:>8}: n={} p50={:.2}ms p90={:.2}ms p99={:.2}ms p999={:.2}ms max={:.2}ms",
            kind.label(),
            p.count,
            p.p50,
            p.p90,
            p.p99,
            p.p999,
            p.max
        );
    }

    let events = front.trace_events();
    let tree = spans(&events);
    let complete = tree.iter().filter(|s| s.is_complete()).count();
    println!(
        "trace: {} events, {} txn spans ({} complete)",
        events.len(),
        tree.len(),
        complete
    );
    assert!(complete >= 1, "traced run must yield a complete txn span");

    std::fs::write(&out, front.trace_sink().to_chrome_json()).expect("write trace JSON");
    println!("chrome trace written to {out} — open in about:tracing or Perfetto");

    // --- Untraced run: the sink must be a true no-op --------------------
    let before = events_recorded_total();
    let mut plain = build(false);
    workload(&mut plain);
    let after = events_recorded_total();
    assert_eq!(
        before, after,
        "disabled tracing recorded events ({before} -> {after})"
    );
    assert!(plain.trace_events().is_empty());
    println!("untraced run recorded 0 events (counter {before} -> {after})");
}
