//! Session guarantees on a social-network timeline (§5.1.3): sticky
//! sessions give read-your-writes; non-sticky sessions lose it under
//! partitions; the client-side session cache restores monotonic reads
//! even while bouncing between replicas. With per-session options, the
//! sticky and bouncing users now share one deployment.
//!
//! Run: `cargo run --release --example social_session`

use hatdb::core::{ClusterSpec, DeploymentBuilder, ProtocolKind, SessionLevel, SessionOptions};
use hatdb::sim::{Partition, PartitionSchedule, SimDuration, SimTime};
use hatdb::Frontend;

fn server_only_partition(seed: u64) -> (ClusterSpec, PartitionSchedule) {
    let spec = ClusterSpec::va_or(2);
    let probe = DeploymentBuilder::new(ProtocolKind::Eventual)
        .seed(seed)
        .clusters(spec.clone())
        .sessions_per_cluster(1)
        .build();
    let a: Vec<u32> = probe.layout().servers[0].clone();
    let b: Vec<u32> = probe.layout().servers[1].clone();
    drop(probe);
    (
        spec,
        PartitionSchedule::from_partitions(vec![Partition::forever(SimTime::ZERO, a, b)]),
    )
}

/// One deployment, two differently-configured sessions: Alice is sticky
/// and always sees her own posts; Bob goes through a load balancer that
/// sprays requests anywhere, and during a replica partition his fresh
/// posts intermittently vanish from his own view.
fn mixed_sessions_during_partition() {
    println!("-- one deployment, a sticky session and a bouncing session --");
    let mut missed = 0;
    let mut total = 0;
    for seed in 0..10 {
        let (spec, partitions) = server_only_partition(seed);
        let mut front = DeploymentBuilder::new(ProtocolKind::Eventual)
            .seed(seed)
            .clusters(spec)
            .sessions_per_cluster(1)
            .partitions(partitions)
            .build();
        let alice = front.open_session(SessionOptions {
            level: SessionLevel::None,
            sticky: true,
        });
        let bob = front.open_session(SessionOptions {
            level: SessionLevel::None,
            sticky: false, // load balancer sprays requests anywhere
        });

        for i in 1..=3 {
            let key = format!("post:alice:{seed}:{i}");
            front.txn(&alice, |t| t.put(&key, "hello world"));
            let read_back = front.txn(&alice, |t| t.get(&key));
            assert!(read_back.is_some(), "sticky RYW must hold");
        }

        for i in 0..5 {
            let key = format!("post:bob:{seed}:{i}");
            if front
                .try_txn(&bob, |t| t.put(&key, "anyone there?"))
                .is_err()
            {
                continue;
            }
            if let Ok(v) = front.try_txn(&bob, |t| t.get(&key)) {
                total += 1;
                if v.is_none() {
                    missed += 1;
                }
            }
        }
    }
    println!("  alice saw every one of her posts immediately (sticky)");
    println!("  bob failed to see his own fresh post {missed}/{total} times (bouncing)");
    assert!(missed > 0, "the §5.1.3 scenario should appear");
}

fn session_cache_restores_monotonic_timeline() {
    println!("-- Monotonic session level: the timeline never goes backwards --");
    let mut front = DeploymentBuilder::new(ProtocolKind::Eventual)
        .seed(3)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(1)
        .build();
    let writer = front.open_session(SessionOptions::default());
    let reader = front.open_session(SessionOptions {
        level: SessionLevel::Monotonic,
        sticky: false, // bouncing, but caching
    });
    let mut last = 0u64;
    for i in 1..=8u64 {
        front.txn(&writer, |t| t.put("timeline:len", &i.to_string()));
        front.run_for(SimDuration::from_millis(5)); // replicas unevenly fresh
        let seen: u64 = front
            .txn(&reader, |t| t.get("timeline:len"))
            .unwrap_or_default()
            .parse()
            .unwrap_or(0);
        println!("  reader bounced to a random cluster and saw length {seen}");
        assert!(seen >= last, "monotonic reads violated");
        last = seen;
    }
}

fn main() {
    mixed_sessions_during_partition();
    println!();
    session_cache_restores_monotonic_timeline();
}
