//! Session guarantees on a social-network timeline (§5.1.3): sticky
//! sessions give read-your-writes; non-sticky clients lose it under
//! partitions; the client-side session cache restores monotonic reads
//! even while bouncing between replicas.
//!
//! Run: `cargo run --release --example social_session`

use hatdb::core::{ClusterSpec, ProtocolKind, SessionLevel, SessionOptions, SimulationBuilder};
use hatdb::sim::{Partition, PartitionSchedule, SimDuration, SimTime};

fn server_only_partition(seed: u64) -> (ClusterSpec, PartitionSchedule) {
    let spec = ClusterSpec::va_or(2);
    let probe = SimulationBuilder::new(ProtocolKind::Eventual)
        .seed(seed)
        .clusters(spec.clone())
        .clients_per_cluster(1)
        .build();
    let a: Vec<u32> = probe.layout().servers[0].clone();
    let b: Vec<u32> = probe.layout().servers[1].clone();
    drop(probe);
    (
        spec,
        PartitionSchedule::from_partitions(vec![Partition::forever(SimTime::ZERO, a, b)]),
    )
}

fn sticky_user_reads_their_posts() {
    println!("-- sticky session: you always see your own posts --");
    let (spec, partitions) = server_only_partition(1);
    let mut sim = SimulationBuilder::new(ProtocolKind::Eventual)
        .seed(1)
        .clusters(spec)
        .clients_per_cluster(1)
        .session(SessionOptions {
            level: SessionLevel::None,
            sticky: true,
        })
        .partitions(partitions)
        .build();
    let alice = sim.client(0);
    for i in 1..=3 {
        let key = format!("post:alice:{i}");
        sim.txn(alice, |t| t.put(&key, "hello world"));
        let read_back = sim.txn(alice, |t| t.get(&key));
        println!(
            "  post {i}: visible right after posting? {}",
            read_back.is_some()
        );
        assert!(read_back.is_some());
    }
}

fn bouncing_user_can_lose_their_posts() {
    println!("-- non-sticky session during a replica partition: posts vanish --");
    let mut missed = 0;
    let mut total = 0;
    for seed in 0..10 {
        let (spec, partitions) = server_only_partition(seed);
        let mut sim = SimulationBuilder::new(ProtocolKind::Eventual)
            .seed(seed)
            .clusters(spec)
            .clients_per_cluster(1)
            .session(SessionOptions {
                level: SessionLevel::None,
                sticky: false, // load balancer sprays requests anywhere
            })
            .partitions(partitions)
            .build();
        let bob = sim.client(0);
        for i in 0..5 {
            let key = format!("post:bob:{seed}:{i}");
            if sim.try_txn(bob, |t| t.put(&key, "anyone there?")).is_err() {
                continue;
            }
            if let Ok(v) = sim.try_txn(bob, |t| t.get(&key)) {
                total += 1;
                if v.is_none() {
                    missed += 1;
                }
            }
        }
    }
    println!("  bob failed to see his own fresh post {missed}/{total} times");
    assert!(missed > 0, "the §5.1.3 scenario should appear");
}

fn session_cache_restores_monotonic_timeline() {
    println!("-- Monotonic session level: the timeline never goes backwards --");
    let mut sim = SimulationBuilder::new(ProtocolKind::Eventual)
        .seed(3)
        .clusters(ClusterSpec::va_or(2))
        .clients_per_cluster(1)
        .session(SessionOptions {
            level: SessionLevel::Monotonic,
            sticky: false, // bouncing, but caching
        })
        .build();
    let writer = sim.client(0);
    let reader = sim.client(1);
    let mut last = 0u64;
    for i in 1..=8u64 {
        sim.txn(writer, |t| t.put("timeline:len", &i.to_string()));
        sim.run_for(SimDuration::from_millis(5)); // replicas unevenly fresh
        let seen: u64 = sim
            .txn(reader, |t| t.get("timeline:len"))
            .unwrap_or_default()
            .parse()
            .unwrap_or(0);
        println!("  reader bounced to a random cluster and saw length {seen}");
        assert!(seen >= last, "monotonic reads violated");
        last = seen;
    }
}

fn main() {
    sticky_user_reads_their_posts();
    println!();
    bouncing_user_can_lose_their_posts();
    println!();
    session_cache_restores_monotonic_timeline();
}
