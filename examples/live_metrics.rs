//! Live-telemetry tour: run a deployment with the metrics registry,
//! the time-sliced sampler and the online consistency probes enabled,
//! then print the Prometheus exposition, the per-window series JSON,
//! and the probe verdicts.
//!
//! Run: `cargo run --release --example live_metrics [series.json]`
//!
//! Like the tracing example, this also asserts the zero-cost-when-off
//! contract: a second, untelemetered deployment runs the same workload
//! and the process-wide telemetry counter must not move.

use hatdb::core::{ClusterSpec, DeploymentBuilder, ProtocolKind, SessionOptions, SystemConfig};
use hatdb::obs::obs_recorded_total;
use hatdb::sim::SimDuration;
use hatdb::Frontend;

fn build(obs: bool) -> hatdb::SimFrontend {
    let mut cfg = SystemConfig::new(ProtocolKind::Mav);
    cfg.obs.enabled = obs;
    cfg.obs.sample_interval = SimDuration::from_millis(5);
    cfg.obs.probe_every = 2;
    DeploymentBuilder::new(ProtocolKind::Mav)
        .seed(0x0011_FEED)
        .clusters(ClusterSpec::va_or(2))
        .sessions_per_cluster(1)
        .config(cfg)
        .build()
}

fn workload(front: &mut hatdb::SimFrontend) -> usize {
    let va = front.open_session(SessionOptions::default());
    let or = front.open_session(SessionOptions::default());
    for round in 0..20 {
        let v = format!("balance-{round}");
        front.txn(&va, |t| {
            t.put("acct:alice", &v)?;
            t.put("acct:bob", &v)
        });
        front.txn(&or, |t| {
            let _ = t.get_many(&["acct:alice", "acct:bob"])?;
            Ok(())
        });
        front.run_for(SimDuration::from_millis(5));
    }
    front.quiesce();
    front.take_records().len()
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "series.json".to_string());

    // --- Telemetered run ------------------------------------------------
    let mut front = build(true);
    let committed = workload(&mut front);

    let reg = front.obs_registry().expect("telemetry enabled");
    println!("=== Prometheus exposition (client + server + probes) ===");
    print!("{}", reg.prometheus());

    let series = front.obs_series().expect("telemetry enabled");
    println!("=== time-sliced series ===");
    println!(
        "{} windows over {} committed txns",
        series.points.len(),
        committed
    );
    let windowed: u64 = series.points.iter().map(|p| p.committed).sum();
    assert_eq!(windowed, committed as u64, "every commit lands in a window");

    if let Some(p) = front.obs_sink().staleness() {
        println!(
            "t-visibility staleness: n={} p50={:.2}ms p99={:.2}ms max={:.2}ms",
            p.count, p.p50, p.p99, p.max
        );
    }
    let violations = front.obs_sink().violations();
    println!("streaming-checker violations: {violations}");
    assert_eq!(violations, 0, "healthy run must not trip the checker");

    std::fs::write(&out, series.to_json()).expect("write series JSON");
    println!("series written to {out}");

    // --- Untelemetered run: the sink must be a true no-op ---------------
    let before = obs_recorded_total();
    let mut plain = build(false);
    workload(&mut plain);
    let after = obs_recorded_total();
    assert_eq!(
        before, after,
        "disabled telemetry recorded events ({before} -> {after})"
    );
    assert!(plain.obs_series().is_none());
    println!("untelemetered run recorded 0 telemetry events (counter {before} -> {after})");
}
