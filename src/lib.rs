//! # hatdb — Highly Available Transactions in Rust
//!
//! A from-scratch reproduction of *Highly Available Transactions: Virtues
//! and Limitations* (Bailis, Davidson, Fekete, Ghodsi, Hellerstein,
//! Stoica — VLDB 2013, extended version arXiv:1302.0309).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`sim`] — deterministic discrete-event simulator with EC2-calibrated
//!   latency models and partition injection.
//! * [`storage`] — multi-versioned key-value substrate with WAL and crash
//!   recovery (the prototype's LevelDB role).
//! * [`core`] — the HAT protocols (Eventual, Read Committed, MAV, Master,
//!   2PL), client sessions, the isolation/consistency taxonomy, and the
//!   Table 2 isolation survey.
//! * [`history`] — Adya-style history recording and anomaly detection
//!   (G0/G1, IMP/PMP, OTV, session phenomena, Lost Update, Write Skew).
//! * [`workloads`] — YCSB-style generators and an executable TPC-C-lite.
//! * [`runtime`] — a threaded runtime driving the same protocol state
//!   machines over real channels.
//!
//! The transaction surface is backend-agnostic: [`DeploymentBuilder`]
//! describes a deployment, [`Frontend`] is the one API for running
//! transactions against it, and a [`Session`] carries its own
//! [`SessionOptions`]. `build()` executes on the simulator
//! ([`core::SimFrontend`]); `build_threaded()` (from [`runtime`])
//! executes the identical deployment on one OS thread per node.
//!
//! ## Quickstart
//!
//! ```
//! use hatdb::{ClusterSpec, DeploymentBuilder, Frontend, ProtocolKind, SessionOptions};
//!
//! // Two fully-replicated clusters in one datacenter, MAV isolation.
//! let mut front = DeploymentBuilder::new(ProtocolKind::Mav)
//!     .seed(42)
//!     .clusters(ClusterSpec::single_dc(2, 1))
//!     .build();
//!
//! let session = front.open_session(SessionOptions::default());
//! front.txn(&session, |t| {
//!     t.put("x", "1")?;
//!     t.put("y", "1")
//! });
//! front.quiesce();
//! let (x, y) = front.txn(&session, |t| Ok((t.get("x")?, t.get("y")?)));
//! // MAV: once any effect of the transaction is visible, all are.
//! assert_eq!(x, y);
//! ```
//!
//! Histories recorded by any run feed straight into the anomaly checker:
//!
//! ```
//! use hatdb::history::{check, IsolationLevel};
//! use hatdb::{ClusterSpec, DeploymentBuilder, Frontend, ProtocolKind, SessionOptions};
//!
//! let mut front = DeploymentBuilder::new(ProtocolKind::ReadCommitted)
//!     .seed(7)
//!     .clusters(ClusterSpec::single_dc(2, 1))
//!     .build();
//! let session = front.open_session(SessionOptions::default());
//! front.txn(&session, |t| t.put("greeting", "hello"));
//! front.quiesce();
//! let v = front.txn(&session, |t| t.get("greeting"));
//! assert_eq!(v.as_deref(), Some("hello"));
//!
//! let report = check(front.take_records(), IsolationLevel::ReadCommitted);
//! assert!(report.ok());
//! ```

pub use hat_core as core;
pub use hat_history as history;
pub use hat_obs as obs;
pub use hat_runtime as runtime;
pub use hat_sim as sim;
pub use hat_storage as storage;
pub use hat_trace as trace;
pub use hat_workloads as workloads;

pub use hat_core::{
    ClusterSpec, DeploymentBuilder, Frontend, HatError, ProtocolEngine, ProtocolKind, RetryPolicy,
    Session, SessionLevel, SessionOptions, SimFrontend, TxnCtx,
};
pub use hat_runtime::{BuildThreaded, RuntimeConfig, RuntimeFrontend};
