//! Collection strategies (`proptest::collection::vec`).

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy producing `Vec`s of a given element strategy and size range.
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.min..self.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vectors of `element` with a length drawn from `len` (half-open, as in
/// proptest's range-based size parameter).
pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy {
        element,
        min: len.start,
        max: len.end,
    }
}
