//! Workspace-local mini property-testing harness with a `proptest`-shaped
//! API.
//!
//! The build environment is offline, so the workspace vendors the subset
//! of `proptest` its test suites use: the [`Strategy`] trait with
//! `prop_map`, range / tuple / regex-char-class / collection strategies,
//! [`any`], the [`proptest!`] macro and the `prop_assert*` macros.
//! Shrinkage is not implemented — failures report the generated inputs
//! via the panic message instead. Generation is deterministic per test
//! (seeded from the test name), so failures reproduce.

use rand::rngs::StdRng;
use rand::Rng;

pub mod collection;
pub mod prelude;

/// Runner configuration (`cases` is the only knob the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

/// `&str` strategies interpret a small regex subset: a single character
/// class with a bounded repetition, e.g. `"[a-z]{1,8}"`. Anything richer
/// panics with a clear message — extend the shim if a test needs more.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        let (lo, hi, min, max) = parse_class_pattern(self).unwrap_or_else(|| {
            panic!("proptest shim: unsupported string pattern {self:?} (expected \"[x-y]{{m,n}}\")")
        });
        let len = rng.gen_range(min..max + 1);
        (0..len)
            .map(|_| rng.gen_range(lo as u32..hi as u32 + 1))
            .map(|c| char::from_u32(c).unwrap())
            .collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(char, char, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut chars = class.chars();
    let lo = chars.next()?;
    if chars.next()? != '-' {
        return None;
    }
    let hi = chars.next()?;
    if chars.next().is_some() {
        return None;
    }
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = counts.split_once(',')?;
    Some((lo, hi, min.parse().ok()?, max.parse().ok()?))
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
}

/// Types with a default "arbitrary" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen_range(<$t>::MIN..<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32);

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

/// Strategy of arbitrary values of `T` (the `any::<T>()` entry point).
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Deterministic per-test seed: FNV-1a of the test's identifying string.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Asserts a condition inside a property (panics on failure, like
/// `assert!` — the shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Armed while a property body runs; if the body panics, the unwind
/// drops this guard and it prints the failing `(test, seed, case)`
/// triple. The rng stream is derived deterministically from the seed,
/// so the triple replays the failure exactly: rerun the named test and
/// the same case index regenerates the same inputs.
#[doc(hidden)]
pub struct FailureContext {
    /// Fully-qualified test name (also the seed derivation input).
    pub test: &'static str,
    /// The rng seed the whole run was derived from.
    pub seed: u64,
    /// Zero-based index of the failing case within the run.
    pub case: u32,
}

impl Drop for FailureContext {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest failure: test={} seed={:#x} case={} — \
                 inputs are regenerated deterministically from the seed, \
                 so rerunning this test reproduces the failure at the \
                 same case index",
                self.test, self.seed, self.case
            );
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let test = concat!(module_path!(), "::", stringify!($name));
                let seed = $crate::seed_for(test);
                let mut rng = <$crate::prelude::StdRng as $crate::prelude::SeedableRng>::seed_from_u64(seed);
                for case in 0..config.cases {
                    let guard = $crate::FailureContext { test, seed, case };
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    $body
                    ::core::mem::forget(guard);
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn string_pattern_shape(s in "[a-c]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn tuples_and_maps(v in (1u32..5, 1u64..9).prop_map(|(a, b)| a as u64 + b)) {
            prop_assert!((2..13).contains(&v));
        }
    }

    proptest! {
        #[test]
        fn collections_respect_len(xs in proptest::collection::vec(any::<u8>(), 1..7)) {
            prop_assert!(!xs.is_empty() && xs.len() < 7);
        }
    }
}
