//! The `proptest::prelude` glob import surface.

pub use crate::{
    any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig, Strategy,
};
pub use rand::rngs::StdRng;
pub use rand::SeedableRng;
