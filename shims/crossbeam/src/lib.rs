//! Workspace-local stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel`'s unbounded MPSC surface is used by the
//! workspace (one receiver per node thread), which `std::sync::mpsc`
//! covers exactly, so the shim re-exports it under crossbeam's names.

/// MPSC channels with crossbeam's naming.
pub mod channel {
    pub use std::sync::mpsc::{RecvTimeoutError, SendError, TryRecvError};
    use std::time::Duration;

    /// Sending half (clonable).
    pub struct Sender<T>(std::sync::mpsc::Sender<T>);

    /// Receiving half.
    pub struct Receiver<T>(std::sync::mpsc::Receiver<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; errors if the receiver is gone.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            self.0.send(t)
        }
    }

    impl<T> Receiver<T> {
        /// Receives, waiting up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_receive_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(42).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 42);
        drop(tx);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        ));
    }
}
