//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment is offline, so the workspace vendors the narrow
//! slice of the `rand 0.8` API the codebase uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers `gen`,
//! `gen_range` and `gen_bool`. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic, fast, and plenty for simulation use.
//! It makes no cryptographic claims whatsoever.

/// Concrete generators.
pub mod rngs {
    pub use crate::std_rng::StdRng;
}

mod std_rng {
    use crate::SeedableRng;

    /// Deterministic xoshiro256++ generator (the shim's "standard" RNG).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next_u64_impl()
        }
    }
}

/// Core randomness source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's raw stream.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Debiased multiply-shift (Lemire); bias is negligible for
                // simulation spans but reject the worst case anyway.
                let mut x = rng.next_u64();
                if span.is_power_of_two() {
                    return lo + ((x & (span - 1)) as $t);
                }
                let threshold = u64::MAX - u64::MAX % span;
                while x >= threshold {
                    x = rng.next_u64();
                }
                lo + ((x % span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u);
                let off = <$u as UniformInt>::sample_range(rng, 0, span);
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_uniform_int_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// The user-facing randomness trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open integer range.
    fn gen_range<T: UniformInt>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}
