//! Workspace-local stand-in for the `bytes` crate.
//!
//! Implements the slice of the `bytes 1.x` API this workspace uses:
//! [`Bytes`] (cheaply clonable, immutable byte string), [`BytesMut`]
//! (growable builder), and the [`Buf`]/[`BufMut`] cursor traits for
//! little-endian framing. `Bytes` is an `Arc<[u8]>`, so clones are
//! reference-counted — the property the protocol code relies on when it
//! fans a value out to many messages.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte string.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// The empty byte string.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Wraps a static slice (copied; the shim does not track lifetimes).
    pub fn from_static(b: &'static [u8]) -> Self {
        Bytes(Arc::from(b))
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(b: &[u8]) -> Self {
        Bytes(Arc::from(b))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Owned copy of the contents.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<&[u8]> for Bytes {
    fn from(b: &[u8]) -> Self {
        Bytes::copy_from_slice(b)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(b: &[u8; N]) -> Self {
        Bytes::copy_from_slice(b)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_ref() == other.as_bytes()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Read cursor over a byte source (implemented for `&[u8]`).
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Advances the cursor by `n`.
    fn advance(&mut self, n: usize);
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.advance(1);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().unwrap());
        self.advance(8);
        v
    }
}

/// Write cursor over a growable sink (implemented for [`BytesMut`]).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.0.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_framing() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), 42);
        assert_eq!(cur.remaining(), 3);
        assert_eq!(cur, b"xyz");
    }

    #[test]
    fn bytes_ordering_matches_slices() {
        let a = Bytes::from("abc");
        let b = Bytes::from("abd");
        assert!(a < b);
        assert!(a.starts_with(b"ab"));
        let mut m = std::collections::BTreeMap::new();
        m.insert(a.clone(), 1);
        assert_eq!(m.get(b"abc".as_slice()), Some(&1));
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1u8; 1024]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
    }
}
