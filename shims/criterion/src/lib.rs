//! Workspace-local minimal benchmarking harness with a `criterion`-shaped
//! API.
//!
//! The build environment is offline, so the workspace vendors the subset
//! of `criterion` its benches use: [`Criterion`], benchmark groups,
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Instead of criterion's statistical machinery it times a fixed
//! number of samples and prints mean/min per iteration — enough to spot
//! order-of-magnitude regressions by eye.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Smoke mode (`--test` on the bench binary's command line, matching
/// real criterion): every benchmark runs exactly one sample, so CI can
/// prove the benches still execute without paying measurement time.
static SMOKE: AtomicBool = AtomicBool::new(false);

/// Enables or disables smoke mode. [`criterion_main!`] calls this from
/// the generated `main` based on the process arguments.
pub fn set_smoke_mode(on: bool) {
    SMOKE.store(on, Ordering::Relaxed);
}

fn effective_samples(configured: u64) -> u64 {
    if SMOKE.load(Ordering::Relaxed) {
        1
    } else {
        configured
    }
}

/// Opaque value sink preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-invocation batch sizing (accepted for API compatibility; the shim
/// always runs one setup per measured invocation).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// The timing loop handle passed to bench closures.
pub struct Bencher {
    samples: u64,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `f` once per sample.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.results.push(start.elapsed());
        }
    }

    /// Times `f` on inputs produced by `setup` (setup time excluded).
    pub fn iter_batched<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut f: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            self.results.push(start.elapsed());
        }
    }
}

fn report(name: &str, results: &[Duration]) {
    if results.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let total: Duration = results.iter().sum();
    let mean = total / results.len() as u32;
    let min = results.iter().min().unwrap();
    println!(
        "{name:<50} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        mean,
        min,
        results.len()
    );
}

/// The top-level bench registry/driver.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Accepted for compatibility; the shim's sample count is fixed.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for compatibility; the shim does not warm up.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run(name.to_string(), f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    fn run(&mut self, name: String, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: effective_samples(self.sample_size),
            results: Vec::new(),
        };
        f(&mut bencher);
        report(&name, &bencher.results);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        self.criterion.run(full, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        self.criterion.run(full, |b| f(b, input));
        self
    }

    /// Closes the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a bench group function, optionally with a configured
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `--test` runs every bench once (real criterion's smoke
            // mode), which is what CI's bench-smoke job invokes.
            $crate::set_smoke_mode(std::env::args().any(|a| a == "--test"));
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u32, |b, &v| {
            b.iter_batched(|| v, |v| v * 2, BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        quick(&mut c);
    }

    #[test]
    fn smoke_mode_runs_one_sample() {
        set_smoke_mode(true);
        let mut ran = 0u64;
        let mut c = Criterion::default().sample_size(50);
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        set_smoke_mode(false);
        assert_eq!(ran, 1, "smoke mode must clamp to one sample");
    }
}
