//! Workspace-local no-op stand-in for `serde`'s derive macros.
//!
//! The workspace annotates data types with `#[derive(Serialize,
//! Deserialize)]` for forward compatibility (wire formats, experiment
//! dumps), but nothing currently serializes through serde at runtime.
//! The build environment is offline, so this proc-macro crate accepts
//! the derives (including `#[serde(...)]` helper attributes) and expands
//! to nothing. Swap in the real `serde` when a network registry is
//! available.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
